//! The built-in function library and its dispatch table.
//!
//! Each builtin receives the evaluation context plus its already-evaluated
//! arguments ([`Arg`]); range arguments stay unevaluated ranges so that
//! aggregates can stream over them, charging the meter per cell — the
//! cell-by-cell execution model the paper attributes to all three systems.

pub mod dateparts;
pub mod datetime;
pub mod info;
pub mod logical;
pub mod lookup;
pub mod math;
pub mod multi;
pub mod stats;
pub mod text;

use crate::addr::Range;
use crate::error::CellError;
use crate::eval::EvalCtx;
use crate::value::Value;

/// An evaluated function argument.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// A scalar value.
    Value(Value),
    /// A range reference (streamed, not materialized).
    Range(Range),
}

/// Dispatches `name` (uppercase) to its implementation; unknown names
/// produce `#NAME?`, as in the real systems.
pub fn call(name: &str, ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match name {
        // --- statistics / aggregates ---
        "SUM" => stats::sum(ctx, args),
        "AVERAGE" => stats::average(ctx, args),
        "COUNT" => stats::count(ctx, args),
        "COUNTA" => stats::counta(ctx, args),
        "COUNTBLANK" => stats::countblank(ctx, args),
        "MIN" => stats::min(ctx, args),
        "MAX" => stats::max(ctx, args),
        "PRODUCT" => stats::product(ctx, args),
        "MEDIAN" => stats::median(ctx, args),
        "STDEV" => stats::stdev(ctx, args),
        "VAR" => stats::var(ctx, args),
        "COUNTIF" => stats::countif(ctx, args),
        "SUMIFS" => multi::sumifs(ctx, args),
        "COUNTIFS" => multi::countifs(ctx, args),
        "AVERAGEIFS" => multi::averageifs(ctx, args),
        "SUMPRODUCT" => multi::sumproduct(ctx, args),
        "LARGE" => multi::large(ctx, args),
        "SMALL" => multi::small(ctx, args),
        "RANK" => multi::rank(ctx, args),
        "MODE" => multi::mode(ctx, args),
        "SUMIF" => stats::sumif(ctx, args),
        "AVERAGEIF" => stats::averageif(ctx, args),
        // --- math ---
        "ABS" => math::abs(ctx, args),
        "SIGN" => math::sign(ctx, args),
        "INT" => math::int(ctx, args),
        "ROUND" => math::round(ctx, args),
        "ROUNDUP" => math::roundup(ctx, args),
        "ROUNDDOWN" => math::rounddown(ctx, args),
        "MOD" => math::modulo(ctx, args),
        "POWER" => math::power(ctx, args),
        "SQRT" => math::sqrt(ctx, args),
        "EXP" => math::exp(ctx, args),
        "LN" => math::ln(ctx, args),
        "LOG" => math::log(ctx, args),
        "LOG10" => math::log10(ctx, args),
        "PI" => math::pi(ctx, args),
        // --- logical (IF/IFERROR are short-circuited in the evaluator) ---
        "AND" => logical::and(ctx, args),
        "OR" => logical::or(ctx, args),
        "NOT" => logical::not(ctx, args),
        "XOR" => logical::xor(ctx, args),
        "TRUE" => Value::Bool(true),
        "FALSE" => Value::Bool(false),
        // --- text ---
        "CONCATENATE" => text::concatenate(ctx, args),
        "LEN" => text::len(ctx, args),
        "LEFT" => text::left(ctx, args),
        "RIGHT" => text::right(ctx, args),
        "MID" => text::mid(ctx, args),
        "UPPER" => text::upper(ctx, args),
        "LOWER" => text::lower(ctx, args),
        "TRIM" => text::trim(ctx, args),
        "FIND" => text::find(ctx, args),
        "SUBSTITUTE" => text::substitute(ctx, args),
        "REPT" => text::rept(ctx, args),
        "VALUE" => text::value(ctx, args),
        "EXACT" => text::exact(ctx, args),
        "TEXTJOIN" => text::textjoin(ctx, args),
        // --- lookup ---
        "VLOOKUP" => lookup::vlookup(ctx, args),
        "XLOOKUP" => lookup::xlookup(ctx, args),
        "OFFSET" => lookup::offset(ctx, args),
        "HLOOKUP" => lookup::hlookup(ctx, args),
        "INDEX" => lookup::index(ctx, args),
        "MATCH" => lookup::match_fn(ctx, args),
        "LOOKUP" => lookup::lookup(ctx, args),
        "CHOOSE" => lookup::choose(ctx, args),
        // --- info ---
        "ISBLANK" => info::isblank(ctx, args),
        "ISNUMBER" => info::isnumber(ctx, args),
        "ISTEXT" => info::istext(ctx, args),
        "ISLOGICAL" => info::islogical(ctx, args),
        "ISERROR" => info::iserror(ctx, args),
        "ISNA" => info::isna(ctx, args),
        "NA" => Value::Error(CellError::Na),
        "ROW" => info::row(ctx, args),
        "COLUMN" => info::column(ctx, args),
        // --- date/time ---
        "NOW" => datetime::now(ctx, args),
        "TODAY" => datetime::today(ctx, args),
        "DATE" => datetime::date(ctx, args),
        "YEAR" => datetime::year(ctx, args),
        "MONTH" => datetime::month(ctx, args),
        "DAY" => datetime::day(ctx, args),
        "WEEKDAY" => datetime::weekday(ctx, args),
        "DAYS" => datetime::days(ctx, args),
        "EDATE" => datetime::edate(ctx, args),
        _ => Value::Error(CellError::Name),
    }
}

/// Whether `name` is a known builtin.
pub fn is_builtin(name: &str) -> bool {
    // Probe with zero args against a throwaway context-free check: dispatch
    // is a match, so replicate the names here via a second match to avoid
    // constructing a context.
    matches!(
        name,
        "SUM" | "AVERAGE" | "COUNT" | "COUNTA" | "COUNTBLANK" | "MIN" | "MAX" | "PRODUCT"
            | "MEDIAN" | "STDEV" | "VAR" | "COUNTIF" | "SUMIF" | "AVERAGEIF" | "ABS" | "SIGN"
            | "INT" | "ROUND" | "ROUNDUP" | "ROUNDDOWN" | "MOD" | "POWER" | "SQRT" | "EXP"
            | "LN" | "LOG" | "LOG10" | "PI" | "IF" | "IFERROR" | "AND" | "OR" | "NOT" | "XOR"
            | "TRUE" | "FALSE" | "CONCATENATE" | "LEN" | "LEFT" | "RIGHT" | "MID" | "UPPER"
            | "LOWER" | "TRIM" | "FIND" | "SUBSTITUTE" | "REPT" | "VALUE" | "EXACT"
            | "TEXTJOIN" | "VLOOKUP" | "HLOOKUP" | "INDEX" | "MATCH" | "LOOKUP" | "CHOOSE"
            | "ISBLANK" | "ISNUMBER" | "ISTEXT" | "ISLOGICAL" | "ISERROR" | "ISNA" | "NA"
            | "ROW" | "COLUMN" | "NOW" | "TODAY" | "SUMIFS" | "COUNTIFS" | "AVERAGEIFS"
            | "SUMPRODUCT" | "LARGE" | "SMALL" | "RANK" | "MODE" | "XLOOKUP" | "OFFSET"
            | "DATE" | "YEAR" | "MONTH" | "DAY" | "WEEKDAY" | "DAYS" | "EDATE"
    )
}

// ---------------------------------------------------------------------
// Argument helpers shared by the function modules.
// ---------------------------------------------------------------------

/// Resolves an argument to a scalar value. Single-cell ranges collapse to
/// the cell (implicit intersection); larger ranges are `#VALUE!`.
pub(crate) fn scalar(ctx: &EvalCtx<'_>, arg: &Arg) -> Value {
    match arg {
        Arg::Value(v) => v.clone(),
        Arg::Range(r) => {
            if r.len() == 1 {
                ctx.read(r.start)
            } else {
                Value::Error(CellError::Value)
            }
        }
    }
}

/// Resolves an argument to a number (spreadsheet coercions).
pub(crate) fn num(ctx: &EvalCtx<'_>, arg: &Arg) -> Result<f64, CellError> {
    scalar(ctx, arg).coerce_number()
}

/// Resolves an argument to text.
pub(crate) fn text_of(ctx: &EvalCtx<'_>, arg: &Arg) -> Result<String, CellError> {
    scalar(ctx, arg).coerce_text()
}

/// Resolves an optional argument: `args.get(i)` or the provided default.
pub(crate) fn opt_num(
    ctx: &EvalCtx<'_>,
    args: &[Arg],
    i: usize,
    default: f64,
) -> Result<f64, CellError> {
    match args.get(i) {
        Some(a) => num(ctx, a),
        None => Ok(default),
    }
}

/// Streams every value in an argument: ranges visit each cell (charging
/// the meter), scalars visit once.
pub(crate) fn for_each_value(
    ctx: &EvalCtx<'_>,
    arg: &Arg,
    f: &mut dyn FnMut(&Value),
) {
    match arg {
        Arg::Value(v) => f(v),
        Arg::Range(r) => ctx.read_range(*r, &mut |_, v| f(v)),
    }
}

/// Streams the *numeric* interpretation of every value across `args`,
/// following the asymmetric aggregate semantics of real spreadsheets:
/// in ranges, only number cells count (text/bool/empty are skipped);
/// scalar literal arguments are coerced (so `SUM("4",TRUE)` is 5).
/// The first error encountered aborts with that error.
pub(crate) fn fold_numbers(
    ctx: &EvalCtx<'_>,
    args: &[Arg],
    mut f: impl FnMut(f64),
) -> Result<(), CellError> {
    let mut first_err: Option<CellError> = None;
    for arg in args {
        if first_err.is_some() {
            break;
        }
        match arg {
            Arg::Value(v) => match v.coerce_number() {
                Ok(n) => f(n),
                Err(e) => first_err = Some(e),
            },
            Arg::Range(r) => {
                ctx.read_range(*r, &mut |_, v| {
                    if first_err.is_some() {
                        return;
                    }
                    match v {
                        Value::Number(n) => f(*n),
                        Value::Error(e) => first_err = Some(*e),
                        _ => {}
                    }
                });
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Arity guard: returns `#VALUE!` unless `lo <= args.len() <= hi`.
pub(crate) fn check_arity(args: &[Arg], lo: usize, hi: usize) -> Result<(), CellError> {
    if args.len() < lo || args.len() > hi {
        Err(CellError::Value)
    } else {
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::addr::CellAddr;
    use crate::eval::ValueMatrix;
    use crate::formula::parse;
    use crate::meter::Meter;

    /// Evaluates a formula against a fixture matrix built from rows.
    pub(crate) fn eval_on(rows: Vec<Vec<Value>>, src: &str) -> Value {
        let m = ValueMatrix::new(rows);
        let meter = Meter::new();
        let ctx = EvalCtx::new(&m, &meter, CellAddr::new(0, 25));
        crate::eval::evaluate(&parse(src).unwrap(), &ctx)
    }

    /// Evaluates a formula against an empty sheet.
    pub(crate) fn eval_empty(src: &str) -> Value {
        eval_on(Vec::new(), src)
    }

    /// Number helper.
    pub(crate) fn n(x: f64) -> Value {
        Value::Number(x)
    }

    /// Text helper.
    pub(crate) fn t(s: &str) -> Value {
        Value::text(s)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn unknown_function_is_name_error() {
        assert_eq!(eval_empty("FROBNICATE(1)"), Value::Error(CellError::Name));
    }

    #[test]
    fn is_builtin_matches_dispatch() {
        assert!(is_builtin("SUM"));
        assert!(is_builtin("VLOOKUP"));
        assert!(!is_builtin("FROBNICATE"));
    }

    #[test]
    fn fold_numbers_skips_text_in_ranges_but_coerces_literals() {
        // Range contains text; only the number counts.
        let rows = vec![vec![n(1.0)], vec![t("x")], vec![n(2.0)]];
        assert_eq!(eval_on(rows, "SUM(A1:A3)"), n(3.0));
        // Literal text coerces.
        assert_eq!(eval_empty("SUM(\"4\",1)"), n(5.0));
        assert_eq!(eval_empty("SUM(\"four\")"), Value::Error(CellError::Value));
    }

    #[test]
    fn range_errors_propagate_out_of_aggregates() {
        let rows = vec![vec![n(1.0)], vec![Value::Error(CellError::Div0)]];
        assert_eq!(eval_on(rows, "SUM(A1:A2)"), Value::Error(CellError::Div0));
    }
}
