//! Multi-criteria aggregates (`SUMIFS`, `COUNTIFS`, `AVERAGEIFS`),
//! `SUMPRODUCT`, and order statistics (`LARGE`, `SMALL`, `RANK`, `MODE`).

use crate::addr::Range;
use crate::error::CellError;
use crate::eval::EvalCtx;
use crate::value::{Criterion, Value};

use super::{check_arity, num, scalar, Arg};

/// Extracts the criteria pairs of an `*IFS` call: `(range, criterion)+`
/// starting at argument `from`.
fn criteria_pairs(
    ctx: &EvalCtx<'_>,
    args: &[Arg],
    from: usize,
) -> Result<Vec<(Range, Criterion)>, CellError> {
    if args.len() <= from || !(args.len() - from).is_multiple_of(2) {
        return Err(CellError::Value);
    }
    let mut pairs = Vec::with_capacity((args.len() - from) / 2);
    let mut i = from;
    while i < args.len() {
        let Arg::Range(range) = args[i] else { return Err(CellError::Value) };
        let criterion = Criterion::parse(&scalar(ctx, &args[i + 1]));
        pairs.push((range, criterion));
        i += 2;
    }
    Ok(pairs)
}

/// Shared `*IFS` machinery: folds the cells of `target` whose aligned
/// cells satisfy every criterion. All ranges must have the same shape.
fn ifs_fold(
    ctx: &EvalCtx<'_>,
    target: Range,
    pairs: &[(Range, Criterion)],
    f: &mut dyn FnMut(&Value),
) -> Result<(), CellError> {
    for (r, _) in pairs {
        if r.rows() != target.rows() || r.cols() != target.cols() {
            return Err(CellError::Value);
        }
    }
    for (dr, dc) in (0..target.rows()).flat_map(|dr| (0..target.cols()).map(move |dc| (dr, dc))) {
        let all_match = pairs.iter().all(|(range, criterion)| {
            let addr = crate::addr::CellAddr::new(range.start.row + dr, range.start.col + dc);
            criterion.matches(&ctx.read(addr))
        });
        if all_match {
            let addr = crate::addr::CellAddr::new(target.start.row + dr, target.start.col + dc);
            f(&ctx.read(addr));
        }
    }
    Ok(())
}

/// `SUMIFS(sum_range, crit_range1, crit1, ...)`.
pub fn sumifs(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    let Some(Arg::Range(target)) = args.first() else { return Value::Error(CellError::Value) };
    let pairs = match criteria_pairs(ctx, args, 1) {
        Ok(p) => p,
        Err(e) => return Value::Error(e),
    };
    let mut total = 0.0;
    match ifs_fold(ctx, *target, &pairs, &mut |v| {
        if let Value::Number(n) = v {
            total += n;
        }
    }) {
        Ok(()) => Value::Number(total),
        Err(e) => Value::Error(e),
    }
}

/// `COUNTIFS(crit_range1, crit1, ...)`.
pub fn countifs(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    let pairs = match criteria_pairs(ctx, args, 0) {
        Ok(p) => p,
        Err(e) => return Value::Error(e),
    };
    let Some(&(first, _)) = pairs.first() else { return Value::Error(CellError::Value) };
    let mut count = 0u64;
    match ifs_fold(ctx, first, &pairs, &mut |_| count += 1) {
        Ok(()) => Value::Number(count as f64),
        Err(e) => Value::Error(e),
    }
}

/// `AVERAGEIFS(avg_range, crit_range1, crit1, ...)`.
pub fn averageifs(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    let Some(Arg::Range(target)) = args.first() else { return Value::Error(CellError::Value) };
    let pairs = match criteria_pairs(ctx, args, 1) {
        Ok(p) => p,
        Err(e) => return Value::Error(e),
    };
    let mut total = 0.0;
    let mut count = 0u64;
    match ifs_fold(ctx, *target, &pairs, &mut |v| {
        if let Value::Number(n) = v {
            total += n;
            count += 1;
        }
    }) {
        Ok(()) if count > 0 => Value::Number(total / count as f64),
        Ok(()) => Value::Error(CellError::Div0),
        Err(e) => Value::Error(e),
    }
}

/// `SUMPRODUCT(range1, range2, ...)` — sums the element-wise products of
/// equally-shaped ranges (non-numeric cells count as 0).
pub fn sumproduct(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 1, usize::MAX) {
        return Value::Error(e);
    }
    let mut ranges = Vec::with_capacity(args.len());
    for a in args {
        match a {
            Arg::Range(r) => ranges.push(*r),
            Arg::Value(v) => {
                // Scalars participate as 1×1 "ranges" only when alone.
                if args.len() == 1 {
                    return match v.coerce_number() {
                        Ok(n) => Value::Number(n),
                        Err(e) => Value::Error(e),
                    };
                }
                return Value::Error(CellError::Value);
            }
        }
    }
    let shape = (ranges[0].rows(), ranges[0].cols());
    if ranges.iter().any(|r| (r.rows(), r.cols()) != shape) {
        return Value::Error(CellError::Value);
    }
    let mut total = 0.0;
    for dr in 0..shape.0 {
        for dc in 0..shape.1 {
            let mut product = 1.0;
            for r in &ranges {
                let addr = crate::addr::CellAddr::new(r.start.row + dr, r.start.col + dc);
                product *= ctx.read(addr).as_number().unwrap_or(0.0);
            }
            total += product;
        }
    }
    Value::Number(total)
}

/// Collects the numeric values of an argument.
fn numbers_of(ctx: &EvalCtx<'_>, arg: &Arg) -> Vec<f64> {
    let mut xs = Vec::new();
    super::for_each_value(ctx, arg, &mut |v| {
        if let Value::Number(n) = v {
            xs.push(*n);
        }
    });
    xs
}

/// `LARGE(range, k)` — the k-th largest value (1-based).
pub fn large(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    kth(ctx, args, true)
}

/// `SMALL(range, k)` — the k-th smallest value (1-based).
pub fn small(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    kth(ctx, args, false)
}

fn kth(ctx: &EvalCtx<'_>, args: &[Arg], largest: bool) -> Value {
    if let Err(e) = check_arity(args, 2, 2) {
        return Value::Error(e);
    }
    let k = match num(ctx, &args[1]) {
        Ok(n) if n >= 1.0 => n as usize,
        Ok(_) => return Value::Error(CellError::Num),
        Err(e) => return Value::Error(e),
    };
    let mut xs = numbers_of(ctx, &args[0]);
    if k > xs.len() {
        return Value::Error(CellError::Num);
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("cell numbers are ordered"));
    let idx = if largest { xs.len() - k } else { k - 1 };
    Value::Number(xs[idx])
}

/// `RANK(x, range, [order=0])` — the rank of `x` among the range's
/// numbers; `order 0` = descending (largest is rank 1), non-zero =
/// ascending.
pub fn rank(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 2, 3) {
        return Value::Error(e);
    }
    let x = match num(ctx, &args[0]) {
        Ok(n) => n,
        Err(e) => return Value::Error(e),
    };
    let ascending = match args.get(2) {
        Some(a) => match num(ctx, a) {
            Ok(n) => n != 0.0,
            Err(e) => return Value::Error(e),
        },
        None => false,
    };
    let xs = numbers_of(ctx, &args[1]);
    if !xs.contains(&x) {
        return Value::Error(CellError::Na);
    }
    let better = xs
        .iter()
        .filter(|&&y| if ascending { y < x } else { y > x })
        .count();
    Value::Number((better + 1) as f64)
}

/// `MODE(range)` — the most frequent number (ties: the one seen first, as
/// in the real systems).
pub fn mode(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 1, usize::MAX) {
        return Value::Error(e);
    }
    let mut order: Vec<f64> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    for arg in args {
        for x in numbers_of(ctx, arg) {
            match order.iter().position(|&y| y == x) {
                Some(i) => counts[i] += 1,
                None => {
                    order.push(x);
                    counts.push(1);
                }
            }
        }
    }
    let Some((best, &n)) = counts.iter().enumerate().max_by_key(|&(i, &c)| (c, usize::MAX - i))
    else {
        return Value::Error(CellError::Na);
    };
    if n < 2 {
        return Value::Error(CellError::Na);
    }
    Value::Number(order[best])
}

#[cfg(test)]
mod tests {
    use crate::error::CellError;
    use crate::functions::testutil::{eval_empty, eval_on, n, t};
    use crate::value::Value;

    fn grid() -> Vec<Vec<Value>> {
        // A: region, B: product, C: amount
        vec![
            vec![t("east"), t("apple"), n(10.0)],
            vec![t("west"), t("apple"), n(20.0)],
            vec![t("east"), t("banana"), n(30.0)],
            vec![t("east"), t("apple"), n(40.0)],
            vec![t("west"), t("banana"), n(50.0)],
        ]
    }

    #[test]
    fn sumifs_multiple_criteria() {
        assert_eq!(
            eval_on(grid(), "SUMIFS(C1:C5,A1:A5,\"east\",B1:B5,\"apple\")"),
            n(50.0)
        );
        assert_eq!(eval_on(grid(), "SUMIFS(C1:C5,A1:A5,\"west\")"), n(70.0));
        assert_eq!(eval_on(grid(), "SUMIFS(C1:C5,C1:C5,\">=30\")"), n(120.0));
    }

    #[test]
    fn countifs_and_averageifs() {
        assert_eq!(eval_on(grid(), "COUNTIFS(A1:A5,\"east\",B1:B5,\"apple\")"), n(2.0));
        assert_eq!(
            eval_on(grid(), "AVERAGEIFS(C1:C5,A1:A5,\"east\")"),
            n((10.0 + 30.0 + 40.0) / 3.0)
        );
        assert_eq!(
            eval_on(grid(), "AVERAGEIFS(C1:C5,A1:A5,\"north\")"),
            Value::Error(CellError::Div0)
        );
    }

    #[test]
    fn ifs_shape_mismatch_is_value_error() {
        assert_eq!(
            eval_on(grid(), "SUMIFS(C1:C5,A1:A4,\"east\")"),
            Value::Error(CellError::Value)
        );
        assert_eq!(eval_on(grid(), "COUNTIFS(A1:A5)"), Value::Error(CellError::Value));
    }

    #[test]
    fn sumproduct_pairs() {
        let rows = vec![
            vec![n(1.0), n(10.0)],
            vec![n(2.0), n(20.0)],
            vec![n(3.0), t("skip")],
        ];
        assert_eq!(eval_on(rows, "SUMPRODUCT(A1:A3,B1:B3)"), n(50.0));
        assert_eq!(eval_empty("SUMPRODUCT(3)"), n(3.0));
    }

    #[test]
    fn large_small() {
        let rows: Vec<Vec<Value>> = [3.0, 1.0, 4.0, 1.0, 5.0].iter().map(|&x| vec![n(x)]).collect();
        assert_eq!(eval_on(rows.clone(), "LARGE(A1:A5,1)"), n(5.0));
        assert_eq!(eval_on(rows.clone(), "LARGE(A1:A5,2)"), n(4.0));
        assert_eq!(eval_on(rows.clone(), "SMALL(A1:A5,1)"), n(1.0));
        assert_eq!(eval_on(rows.clone(), "SMALL(A1:A5,3)"), n(3.0));
        assert_eq!(eval_on(rows, "LARGE(A1:A5,6)"), Value::Error(CellError::Num));
    }

    #[test]
    fn rank_orders() {
        let rows: Vec<Vec<Value>> = [10.0, 30.0, 20.0].iter().map(|&x| vec![n(x)]).collect();
        assert_eq!(eval_on(rows.clone(), "RANK(30,A1:A3)"), n(1.0));
        assert_eq!(eval_on(rows.clone(), "RANK(10,A1:A3)"), n(3.0));
        assert_eq!(eval_on(rows.clone(), "RANK(10,A1:A3,1)"), n(1.0));
        assert_eq!(eval_on(rows, "RANK(99,A1:A3)"), Value::Error(CellError::Na));
    }

    #[test]
    fn mode_most_frequent() {
        let rows: Vec<Vec<Value>> =
            [5.0, 3.0, 5.0, 3.0, 5.0].iter().map(|&x| vec![n(x)]).collect();
        assert_eq!(eval_on(rows, "MODE(A1:A5)"), n(5.0));
        let unique: Vec<Vec<Value>> = [1.0, 2.0].iter().map(|&x| vec![n(x)]).collect();
        assert_eq!(eval_on(unique, "MODE(A1:A2)"), Value::Error(CellError::Na));
    }
}
