//! Aggregate and statistics builtins, including the conditional variants
//! (`COUNTIF`, `SUMIF`, `AVERAGEIF`) that the BCT aggregate experiment
//! (§4.3.3) uses as representatives. All aggregates stream over their range
//! arguments cell-by-cell — full scans, no indexes and no incremental
//! maintenance, per the paper's findings for all three systems.

use crate::error::CellError;
use crate::eval::EvalCtx;
use crate::index;
use crate::value::{Criterion, Value};

use super::{check_arity, fold_numbers, for_each_value, scalar, Arg};

/// `SUM(args...)`.
pub fn sum(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 1, usize::MAX) {
        return Value::Error(e);
    }
    let mut total = 0.0;
    match fold_numbers(ctx, args, |n| total += n) {
        Ok(()) => Value::Number(total),
        Err(e) => Value::Error(e),
    }
}

/// `AVERAGE(args...)` — `#DIV/0!` when no numeric values are present.
pub fn average(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 1, usize::MAX) {
        return Value::Error(e);
    }
    let mut total = 0.0;
    let mut count = 0u64;
    match fold_numbers(ctx, args, |n| {
        total += n;
        count += 1;
    }) {
        Ok(()) if count > 0 => Value::Number(total / count as f64),
        Ok(()) => Value::Error(CellError::Div0),
        Err(e) => Value::Error(e),
    }
}

/// `COUNT(args...)` — numeric values only.
pub fn count(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    let mut n = 0u64;
    for arg in args {
        match arg {
            Arg::Value(v) => {
                if v.coerce_number().is_ok() && !v.is_empty() {
                    n += 1;
                }
            }
            Arg::Range(r) => ctx.read_range(*r, &mut |_, v| {
                if matches!(v, Value::Number(_)) {
                    n += 1;
                }
            }),
        }
    }
    Value::Number(n as f64)
}

/// `COUNTA(args...)` — non-empty values.
pub fn counta(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    let mut n = 0u64;
    for arg in args {
        for_each_value(ctx, arg, &mut |v| {
            if !v.is_empty() {
                n += 1;
            }
        });
    }
    Value::Number(n as f64)
}

/// `COUNTBLANK(range)`. Cells of the range beyond the materialized grid
/// are blank by definition, so the count is computed as the range size
/// minus the visited non-empty cells.
pub fn countblank(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 1, 1) {
        return Value::Error(e);
    }
    match &args[0] {
        Arg::Value(v) => Value::Number(if v.is_empty() { 1.0 } else { 0.0 }),
        Arg::Range(r) => {
            let mut nonempty = 0u64;
            ctx.read_range(*r, &mut |_, v| {
                if !v.is_empty() {
                    nonempty += 1;
                }
            });
            Value::Number((r.len() - nonempty) as f64)
        }
    }
}

/// Shared extremum body.
fn extremum(ctx: &EvalCtx<'_>, args: &[Arg], better: fn(f64, f64) -> bool) -> Value {
    if let Err(e) = check_arity(args, 1, usize::MAX) {
        return Value::Error(e);
    }
    let mut best: Option<f64> = None;
    match fold_numbers(ctx, args, |n| {
        best = Some(match best {
            Some(b) if better(b, n) => b,
            _ => n,
        });
    }) {
        // Real systems return 0 for MIN/MAX over no numbers.
        Ok(()) => Value::Number(best.unwrap_or(0.0)),
        Err(e) => Value::Error(e),
    }
}

/// `MIN(args...)`.
pub fn min(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    extremum(ctx, args, |best, n| best <= n)
}

/// `MAX(args...)`.
pub fn max(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    extremum(ctx, args, |best, n| best >= n)
}

/// `PRODUCT(args...)`.
pub fn product(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 1, usize::MAX) {
        return Value::Error(e);
    }
    let mut total = 1.0;
    let mut any = false;
    match fold_numbers(ctx, args, |n| {
        total *= n;
        any = true;
    }) {
        Ok(()) => Value::Number(if any { total } else { 0.0 }),
        Err(e) => Value::Error(e),
    }
}

/// `MEDIAN(args...)`.
pub fn median(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    let mut xs: Vec<f64> = Vec::new();
    if let Err(e) = fold_numbers(ctx, args, |n| xs.push(n)) {
        return Value::Error(e);
    }
    if xs.is_empty() {
        return Value::Error(CellError::Num);
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN from cells"));
    let mid = xs.len() / 2;
    let m = if xs.len() % 2 == 1 { xs[mid] } else { (xs[mid - 1] + xs[mid]) / 2.0 };
    Value::Number(m)
}

/// Sample variance helper returning `(n, mean, m2)` via Welford.
fn welford(ctx: &EvalCtx<'_>, args: &[Arg]) -> Result<(u64, f64, f64), CellError> {
    let mut n = 0u64;
    let mut mean = 0.0;
    let mut m2 = 0.0;
    fold_numbers(ctx, args, |x| {
        n += 1;
        let d = x - mean;
        mean += d / n as f64;
        m2 += d * (x - mean);
    })?;
    Ok((n, mean, m2))
}

/// `VAR(args...)` — sample variance.
pub fn var(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match welford(ctx, args) {
        Ok((n, _, m2)) if n >= 2 => Value::Number(m2 / (n - 1) as f64),
        Ok(_) => Value::Error(CellError::Div0),
        Err(e) => Value::Error(e),
    }
}

/// `STDEV(args...)` — sample standard deviation.
pub fn stdev(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match var(ctx, args) {
        Value::Number(v) => Value::Number(v.sqrt()),
        other => other,
    }
}

/// `COUNTIF(range, criterion)` — the paper's representative conditional
/// aggregate. Always a full scan of the (clipped) range.
pub fn countif(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 2, 2) {
        return Value::Error(e);
    }
    let criterion = Criterion::parse(&scalar(ctx, &args[1]));
    if let Arg::Range(r) = &args[0] {
        // The optimized system's indexed path: O(1)/O(log m) probes in
        // place of the scan, bit-identical count.
        if let Some(count) = index::countif_probe(ctx, *r, &criterion) {
            return Value::Number(count);
        }
    }
    let mut n = 0u64;
    for_each_value(ctx, &args[0], &mut |v| {
        if criterion.matches(v) {
            n += 1;
        }
    });
    Value::Number(n as f64)
}

/// `SUMIF(range, criterion, [sum_range])`.
pub fn sumif(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 2, 3) {
        return Value::Error(e);
    }
    let criterion = Criterion::parse(&scalar(ctx, &args[1]));
    match conditional_fold(ctx, args, &criterion) {
        Ok((total, _)) => Value::Number(total),
        Err(e) => Value::Error(e),
    }
}

/// `AVERAGEIF(range, criterion, [avg_range])`.
pub fn averageif(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 2, 3) {
        return Value::Error(e);
    }
    let criterion = Criterion::parse(&scalar(ctx, &args[1]));
    match conditional_fold(ctx, args, &criterion) {
        Ok((_, 0)) => Value::Error(CellError::Div0),
        Ok((total, n)) => Value::Number(total / n as f64),
        Err(e) => Value::Error(e),
    }
}

/// Shared body for SUMIF/AVERAGEIF: sums the values (from `sum_range` when
/// given, else the criteria range itself) of rows matching the criterion.
fn conditional_fold(
    ctx: &EvalCtx<'_>,
    args: &[Arg],
    criterion: &Criterion,
) -> Result<(f64, u64), CellError> {
    let Arg::Range(crit_range) = args[0] else {
        // Scalar "range": act on the single value.
        let v = scalar(ctx, &args[0]);
        return if criterion.matches(&v) {
            let n = v.coerce_number().unwrap_or(0.0);
            Ok((n, 1))
        } else {
            Ok((0.0, 0))
        };
    };
    let sum_range = match args.get(2) {
        Some(Arg::Range(r)) => Some(*r),
        Some(_) => return Err(CellError::Value),
        None => None,
    };
    if let Some(folded) = index::sumif_probe(ctx, crit_range, sum_range, criterion) {
        return Ok(folded);
    }
    let mut total = 0.0;
    let mut count = 0u64;
    match sum_range {
        None => {
            ctx.read_range(crit_range, &mut |_, v| {
                if criterion.matches(v) {
                    if let Value::Number(n) = v {
                        total += n;
                        count += 1;
                    }
                }
            });
        }
        Some(sr) => {
            // Row/col-aligned second range, as in the real systems: the
            // matched cell's offset indexes the sum range.
            ctx.read_range(crit_range, &mut |addr, v| {
                if criterion.matches(v) {
                    let dr = addr.row - crit_range.start.row;
                    let dc = addr.col - crit_range.start.col;
                    if let Some(target) =
                        sr.start.offset(i64::from(dr), i64::from(dc))
                    {
                        let sv = ctx.read(target);
                        if let Value::Number(n) = sv {
                            total += n;
                            count += 1;
                        }
                    }
                }
            });
        }
    }
    Ok((total, count))
}

#[cfg(test)]
mod tests {
    use crate::error::CellError;
    use crate::functions::testutil::{eval_empty, eval_on, n, t};
    use crate::value::Value;

    fn grid() -> Vec<Vec<Value>> {
        // A: 1..6, B: STORM/none alternating, C: 10*i
        (0..6u32)
            .map(|i| {
                vec![
                    n(f64::from(i + 1)),
                    if i % 2 == 0 { t("STORM") } else { t("none") },
                    n(f64::from((i + 1) * 10)),
                ]
            })
            .collect()
    }

    #[test]
    fn sum_average_count() {
        assert_eq!(eval_on(grid(), "SUM(A1:A6)"), n(21.0));
        assert_eq!(eval_on(grid(), "AVERAGE(A1:A6)"), n(3.5));
        assert_eq!(eval_on(grid(), "COUNT(A1:B6)"), n(6.0)); // text not counted
        assert_eq!(eval_on(grid(), "COUNTA(A1:B6)"), n(12.0));
        assert_eq!(eval_on(grid(), "COUNTBLANK(A1:D6)"), n(6.0)); // col D empty
    }

    #[test]
    fn average_empty_is_div0() {
        assert_eq!(eval_on(vec![vec![t("x")]], "AVERAGE(A1:A1)"), Value::Error(CellError::Div0));
    }

    #[test]
    fn min_max_product() {
        assert_eq!(eval_on(grid(), "MIN(A1:A6)"), n(1.0));
        assert_eq!(eval_on(grid(), "MAX(A1:A6)"), n(6.0));
        assert_eq!(eval_empty("PRODUCT(2,3,4)"), n(24.0));
        assert_eq!(eval_empty("MIN(5,-2,7)"), n(-2.0));
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(eval_empty("MEDIAN(1,2,3)"), n(2.0));
        assert_eq!(eval_empty("MEDIAN(1,2,3,4)"), n(2.5));
        assert_eq!(eval_empty("MEDIAN(\"x\")"), Value::Error(CellError::Value));
    }

    #[test]
    fn variance_and_stdev() {
        assert_eq!(eval_empty("VAR(2,4,4,4,5,5,7,9)"), n(4.571428571428571));
        let sd = eval_empty("STDEV(2,4,4,4,5,5,7,9)").as_number().unwrap();
        assert!((sd - 4.571428571428571f64.sqrt()).abs() < 1e-12);
        assert_eq!(eval_empty("VAR(1)"), Value::Error(CellError::Div0));
    }

    #[test]
    fn countif_value_and_criteria() {
        assert_eq!(eval_on(grid(), "COUNTIF(B1:B6,\"STORM\")"), n(3.0));
        assert_eq!(eval_on(grid(), "COUNTIF(A1:A6,\">=4\")"), n(3.0));
        assert_eq!(eval_on(grid(), "COUNTIF(A1:A6,\"<>3\")"), n(5.0));
        assert_eq!(eval_on(grid(), "COUNTIF(A1:A6,4)"), n(1.0));
        // The paper's per-row form: single-cell range.
        assert_eq!(eval_on(grid(), "COUNTIF(B1,\"STORM\")"), n(1.0));
        assert_eq!(eval_on(grid(), "COUNTIF(B2,\"STORM\")"), n(0.0));
    }

    #[test]
    fn sumif_with_and_without_sum_range() {
        assert_eq!(eval_on(grid(), "SUMIF(A1:A6,\">3\")"), n(15.0));
        // STORM rows are 1,3,5 → C values 10+30+50
        assert_eq!(eval_on(grid(), "SUMIF(B1:B6,\"STORM\",C1:C6)"), n(90.0));
    }

    #[test]
    fn averageif_semantics() {
        assert_eq!(eval_on(grid(), "AVERAGEIF(B1:B6,\"STORM\",C1:C6)"), n(30.0));
        assert_eq!(
            eval_on(grid(), "AVERAGEIF(B1:B6,\"TORNADO\",C1:C6)"),
            Value::Error(CellError::Div0)
        );
    }

    #[test]
    fn countif_wildcards() {
        assert_eq!(eval_on(grid(), "COUNTIF(B1:B6,\"st*\")"), n(3.0));
    }
}
