//! Lookup builtins. `VLOOKUP` is the paper's representative (§4.3.4); its
//! scan behaviour is controlled by the context's [`crate::eval::LookupStrategy`]:
//!
//! * `early_exit_exact` — Excel "terminates execution after finding the
//!   value"; Calc and Google Sheets "continue to scan the entire data".
//! * `binary_search_approx` — Excel's near-constant sorted lookup
//!   ("log2 500000 ≈ 19 … roughly 19 comparisons in memory").

use crate::addr::{CellAddr, Range};
use crate::error::CellError;
use crate::eval::EvalCtx;
use crate::index;
use crate::value::Value;

use super::{check_arity, num, scalar, Arg};

/// Extracts a range argument or fails with `#VALUE!`.
fn range_arg(args: &[Arg], i: usize) -> Result<Range, CellError> {
    match args.get(i) {
        Some(Arg::Range(r)) => Ok(*r),
        _ => Err(CellError::Value),
    }
}

/// Clips `range` to the materialized sheet extent; `None` when fully
/// outside.
fn clip(ctx: &EvalCtx<'_>, range: Range) -> Option<Range> {
    let (nrows, ncols) = ctx.cells.bounds();
    if nrows == 0 || ncols == 0 {
        return None;
    }
    if range.start.row >= nrows || range.start.col >= ncols {
        return None;
    }
    Some(Range::new(
        range.start,
        CellAddr::new(range.end.row.min(nrows - 1), range.end.col.min(ncols - 1)),
    ))
}

/// Linear exact-match scan down `col` of `range`; honors early exit.
/// Returns the matching row (absolute).
fn scan_exact(ctx: &EvalCtx<'_>, range: Range, col: u32, needle: &Value) -> Option<u32> {
    let mut found: Option<u32> = None;
    for row in range.start.row..=range.end.row {
        let v = ctx.read(CellAddr::new(row, col));
        if found.is_none() && v.sheet_eq(needle) {
            found = Some(row);
            if ctx.lookup.early_exit_exact {
                break;
            }
        }
    }
    found
}

/// Approximate match (largest value ≤ needle, data assumed sorted
/// ascending): either a binary search (Excel with Sorted=TRUE) or the full
/// linear scan the other systems perform.
fn scan_approx(ctx: &EvalCtx<'_>, range: Range, col: u32, needle: &Value) -> Option<u32> {
    if ctx.lookup.binary_search_approx {
        let mut lo = range.start.row;
        let mut hi = range.end.row;
        let mut best: Option<u32> = None;
        while lo <= hi {
            let mid = lo + (hi - lo) / 2;
            let v = ctx.read(CellAddr::new(mid, col));
            if v.sheet_cmp(needle).is_le() {
                best = Some(mid);
                if mid == u32::MAX {
                    break;
                }
                lo = mid + 1;
            } else {
                if mid == range.start.row {
                    break;
                }
                hi = mid - 1;
            }
        }
        best
    } else {
        let mut best: Option<u32> = None;
        for row in range.start.row..=range.end.row {
            let v = ctx.read(CellAddr::new(row, col));
            if v.sheet_cmp(needle).is_le() && !v.is_empty() {
                best = Some(row);
            }
        }
        best
    }
}

/// `VLOOKUP(needle, range, col_index, [approx=TRUE])`.
pub fn vlookup(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 3, 4) {
        return Value::Error(e);
    }
    let needle = scalar(ctx, &args[0]);
    if let Value::Error(e) = needle {
        return Value::Error(e);
    }
    let range = match range_arg(args, 1) {
        Ok(r) => r,
        Err(e) => return Value::Error(e),
    };
    let col_index = match num(ctx, &args[2]) {
        Ok(n) if n >= 1.0 => n as u32,
        Ok(_) => return Value::Error(CellError::Value),
        Err(e) => return Value::Error(e),
    };
    if col_index > range.cols() {
        return Value::Error(CellError::Ref);
    }
    let approx = match args.get(3) {
        Some(a) => match scalar(ctx, a).coerce_bool() {
            Ok(b) => b,
            Err(e) => return Value::Error(e),
        },
        None => true,
    };
    let Some(range) = clip(ctx, range) else {
        return Value::Error(CellError::Na);
    };
    let key_col = range.start.col;
    let hit = if approx {
        scan_approx(ctx, range, key_col, &needle)
    } else if let Some(hit) = index::lookup_probe(ctx, range, key_col, &needle) {
        // Indexed exact match: same first-match-in-row-order result as the
        // scan, answered in O(1) probes.
        hit
    } else {
        scan_exact(ctx, range, key_col, &needle)
    };
    match hit {
        Some(row) => ctx.read(CellAddr::new(row, range.start.col + col_index - 1)),
        None => Value::Error(CellError::Na),
    }
}

/// `HLOOKUP(needle, range, row_index, [approx=TRUE])` — the transposed
/// variant; scans the first row.
pub fn hlookup(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 3, 4) {
        return Value::Error(e);
    }
    let needle = scalar(ctx, &args[0]);
    let range = match range_arg(args, 1) {
        Ok(r) => r,
        Err(e) => return Value::Error(e),
    };
    let row_index = match num(ctx, &args[2]) {
        Ok(n) if n >= 1.0 => n as u32,
        Ok(_) => return Value::Error(CellError::Value),
        Err(e) => return Value::Error(e),
    };
    if row_index > range.rows() {
        return Value::Error(CellError::Ref);
    }
    let approx = match args.get(3) {
        Some(a) => match scalar(ctx, a).coerce_bool() {
            Ok(b) => b,
            Err(e) => return Value::Error(e),
        },
        None => true,
    };
    let Some(range) = clip(ctx, range) else {
        return Value::Error(CellError::Na);
    };
    let key_row = range.start.row;
    let mut hit: Option<u32> = None;
    let mut best: Option<u32> = None;
    for col in range.start.col..=range.end.col {
        let v = ctx.read(CellAddr::new(key_row, col));
        if approx {
            if v.sheet_cmp(&needle).is_le() && !v.is_empty() {
                best = Some(col);
            }
        } else if hit.is_none() && v.sheet_eq(&needle) {
            hit = Some(col);
            if ctx.lookup.early_exit_exact {
                break;
            }
        }
    }
    let col = if approx { best } else { hit };
    match col {
        Some(c) => ctx.read(CellAddr::new(range.start.row + row_index - 1, c)),
        None => Value::Error(CellError::Na),
    }
}

/// `INDEX(range, row, [col=1])` — 1-based within the range.
pub fn index(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 2, 3) {
        return Value::Error(e);
    }
    let range = match range_arg(args, 0) {
        Ok(r) => r,
        Err(e) => return Value::Error(e),
    };
    let row = match num(ctx, &args[1]) {
        Ok(n) if n >= 1.0 => n as u32,
        Ok(_) => return Value::Error(CellError::Value),
        Err(e) => return Value::Error(e),
    };
    let col = match args.get(2) {
        Some(a) => match num(ctx, a) {
            Ok(n) if n >= 1.0 => n as u32,
            Ok(_) => return Value::Error(CellError::Value),
            Err(e) => return Value::Error(e),
        },
        None => 1,
    };
    if row > range.rows() || col > range.cols() {
        return Value::Error(CellError::Ref);
    }
    ctx.read(CellAddr::new(range.start.row + row - 1, range.start.col + col - 1))
}

/// `MATCH(needle, range, [match_type=1])` — returns the 1-based position.
/// `0` exact, `1` largest ≤ (ascending data), `-1` smallest ≥ (descending
/// data).
pub fn match_fn(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 2, 3) {
        return Value::Error(e);
    }
    let needle = scalar(ctx, &args[0]);
    let range = match range_arg(args, 1) {
        Ok(r) => r,
        Err(e) => return Value::Error(e),
    };
    let match_type = match args.get(2) {
        Some(a) => match num(ctx, a) {
            Ok(n) => n,
            Err(e) => return Value::Error(e),
        },
        None => 1.0,
    };
    if range.rows() != 1 && range.cols() != 1 {
        return Value::Error(CellError::Na);
    }
    let Some(range) = clip(ctx, range) else {
        return Value::Error(CellError::Na);
    };
    let vertical = range.cols() == 1;
    if vertical && match_type == 0.0 {
        // Indexed exact MATCH down a column: the probe returns the first
        // matching absolute row, exactly the scan's result.
        if let Some(hit) = index::lookup_probe(ctx, range, range.start.col, &needle) {
            return match hit {
                Some(row) => Value::Number(f64::from(row - range.start.row + 1)),
                None => Value::Error(CellError::Na),
            };
        }
    }
    let len = if vertical { range.rows() } else { range.cols() };
    let read_at = |i: u32| {
        let addr = if vertical {
            CellAddr::new(range.start.row + i, range.start.col)
        } else {
            CellAddr::new(range.start.row, range.start.col + i)
        };
        ctx.read(addr)
    };
    let mut result: Option<u32> = None;
    for i in 0..len {
        let v = read_at(i);
        if match_type == 0.0 {
            if result.is_none() && v.sheet_eq(&needle) {
                result = Some(i);
                if ctx.lookup.early_exit_exact {
                    break;
                }
            }
        } else if match_type > 0.0 {
            if v.sheet_cmp(&needle).is_le() && !v.is_empty() {
                result = Some(i);
            }
        } else {
            // descending: first value >= needle keeps being replaced while
            // values stay >=; stop once below.
            if v.sheet_cmp(&needle).is_ge() && !v.is_empty() {
                result = Some(i);
            }
        }
    }
    match result {
        Some(i) => Value::Number(f64::from(i + 1)),
        None => Value::Error(CellError::Na),
    }
}

/// `LOOKUP(needle, lookup_range, [result_range])` — approximate match.
pub fn lookup(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 2, 3) {
        return Value::Error(e);
    }
    let needle = scalar(ctx, &args[0]);
    let lookup_range = match range_arg(args, 1) {
        Ok(r) => r,
        Err(e) => return Value::Error(e),
    };
    let Some(lookup_clipped) = clip(ctx, lookup_range) else {
        return Value::Error(CellError::Na);
    };
    let vertical = lookup_clipped.cols() == 1;
    let hit = if vertical {
        scan_approx(ctx, lookup_clipped, lookup_clipped.start.col, &needle).map(|row| row - lookup_clipped.start.row)
    } else {
        let mut best: Option<u32> = None;
        for col in lookup_clipped.start.col..=lookup_clipped.end.col {
            let v = ctx.read(CellAddr::new(lookup_clipped.start.row, col));
            if v.sheet_cmp(&needle).is_le() && !v.is_empty() {
                best = Some(col - lookup_clipped.start.col);
            }
        }
        best
    };
    let Some(offset) = hit else {
        return Value::Error(CellError::Na);
    };
    let result_range = match args.get(2) {
        Some(Arg::Range(r)) => *r,
        Some(_) => return Value::Error(CellError::Value),
        None => lookup_range,
    };
    let addr = if result_range.cols() == 1 {
        CellAddr::new(result_range.start.row + offset, result_range.start.col)
    } else {
        CellAddr::new(result_range.start.row, result_range.start.col + offset)
    };
    ctx.read(addr)
}

/// `XLOOKUP(needle, lookup_range, return_range, [if_not_found],
/// [match_mode = 0])` — the modern lookup: `0` exact, `-1` exact or next
/// smaller, `1` exact or next larger. Lookup and return ranges must be
/// single-column (or single-row) vectors of the same length.
pub fn xlookup(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 3, 5) {
        return Value::Error(e);
    }
    let needle = scalar(ctx, &args[0]);
    let (lookup_range, return_range) = match (range_arg(args, 1), range_arg(args, 2)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return Value::Error(e),
    };
    if lookup_range.len() != return_range.len() {
        return Value::Error(CellError::Value);
    }
    let match_mode = match args.get(4) {
        Some(a) => match num(ctx, a) {
            Ok(n) => n as i32,
            Err(e) => return Value::Error(e),
        },
        None => 0,
    };
    let Some(clipped) = clip(ctx, lookup_range) else {
        return xlookup_miss(ctx, args);
    };
    let vertical = clipped.cols() == 1;
    let len = if vertical { clipped.rows() } else { clipped.cols() };
    let read_at = |i: u32| {
        let addr = if vertical {
            CellAddr::new(clipped.start.row + i, clipped.start.col)
        } else {
            CellAddr::new(clipped.start.row, clipped.start.col + i)
        };
        ctx.read(addr)
    };
    let mut exact: Option<u32> = None;
    let mut below: Option<(u32, Value)> = None; // largest value < needle
    let mut above: Option<(u32, Value)> = None; // smallest value > needle
    for i in 0..len {
        let v = read_at(i);
        if v.sheet_eq(&needle) {
            exact = Some(i);
            if ctx.lookup.early_exit_exact && match_mode == 0 {
                break;
            }
            continue;
        }
        match v.sheet_cmp(&needle) {
            std::cmp::Ordering::Less
                if !v.is_empty()
                    && below.as_ref().is_none_or(|(_, b)| v.sheet_cmp(b).is_gt()) =>
            {
                below = Some((i, v));
            }
            std::cmp::Ordering::Greater
                if above.as_ref().is_none_or(|(_, a)| v.sheet_cmp(a).is_lt()) =>
            {
                above = Some((i, v));
            }
            _ => {}
        }
    }
    let hit = match match_mode {
        0 => exact,
        -1 => exact.or(below.map(|(i, _)| i)),
        1 => exact.or(above.map(|(i, _)| i)),
        _ => return Value::Error(CellError::Value),
    };
    match hit {
        Some(i) => {
            let addr = if return_range.cols() == 1 {
                CellAddr::new(return_range.start.row + i, return_range.start.col)
            } else {
                CellAddr::new(return_range.start.row, return_range.start.col + i)
            };
            ctx.read(addr)
        }
        None => xlookup_miss(ctx, args),
    }
}

/// The not-found result of an XLOOKUP: the 4th argument when present,
/// `#N/A` otherwise.
fn xlookup_miss(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match args.get(3) {
        Some(a) => scalar(ctx, a),
        None => Value::Error(CellError::Na),
    }
}

/// `OFFSET(reference, rows, cols)` — the value of the cell `rows`/`cols`
/// away from the reference's top-left corner (the scalar form; the
/// range-producing form is not part of this dialect).
pub fn offset(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 3, 3) {
        return Value::Error(e);
    }
    let base = match range_arg(args, 0) {
        Ok(r) => r.start,
        Err(e) => return Value::Error(e),
    };
    let (dr, dc) = match (num(ctx, &args[1]), num(ctx, &args[2])) {
        (Ok(a), Ok(b)) => (a as i64, b as i64),
        (Err(e), _) | (_, Err(e)) => return Value::Error(e),
    };
    match base.offset(dr, dc) {
        Some(addr) => ctx.read(addr),
        None => Value::Error(CellError::Ref),
    }
}

/// `CHOOSE(k, v1, v2, ...)`.
pub fn choose(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 2, usize::MAX) {
        return Value::Error(e);
    }
    let k = match num(ctx, &args[0]) {
        Ok(n) if n >= 1.0 && (n as usize) < args.len() => n as usize,
        Ok(_) => return Value::Error(CellError::Value),
        Err(e) => return Value::Error(e),
    };
    scalar(ctx, &args[k])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::CellAddr;
    use crate::eval::{evaluate, EvalCtx, LookupStrategy, ValueMatrix};
    use crate::formula::parse;
    use crate::functions::testutil::{eval_on, n, t};
    use crate::meter::{Meter, Primitive};

    /// A sorted two-column table: A = 10,20,..,100; B = "s10".."s100".
    fn table() -> Vec<Vec<Value>> {
        (1..=10u32)
            .map(|i| vec![n(f64::from(i * 10)), t(&format!("s{}", i * 10))])
            .collect()
    }

    #[test]
    fn vlookup_exact() {
        assert_eq!(eval_on(table(), "VLOOKUP(30,A1:B10,2,FALSE)"), t("s30"));
        assert_eq!(
            eval_on(table(), "VLOOKUP(35,A1:B10,2,FALSE)"),
            Value::Error(CellError::Na)
        );
    }

    #[test]
    fn vlookup_approx_default() {
        // default 4th arg is TRUE: largest value <= needle
        assert_eq!(eval_on(table(), "VLOOKUP(35,A1:B10,2)"), t("s30"));
        assert_eq!(eval_on(table(), "VLOOKUP(100,A1:B10,2,TRUE)"), t("s100"));
        assert_eq!(eval_on(table(), "VLOOKUP(5,A1:B10,2,TRUE)"), Value::Error(CellError::Na));
    }

    #[test]
    fn vlookup_col_index_bounds() {
        assert_eq!(eval_on(table(), "VLOOKUP(30,A1:B10,3,FALSE)"), Value::Error(CellError::Ref));
        assert_eq!(eval_on(table(), "VLOOKUP(30,A1:B10,0,FALSE)"), Value::Error(CellError::Value));
    }

    fn run_with_strategy(src: &str, strategy: LookupStrategy) -> (Value, u64) {
        let m = ValueMatrix::new(table());
        let meter = Meter::new();
        let mut ctx = EvalCtx::new(&m, &meter, CellAddr::new(0, 5));
        ctx.lookup = strategy;
        let v = evaluate(&parse(src).unwrap(), &ctx);
        (v, meter.snapshot().get(Primitive::CellRead))
    }

    #[test]
    fn early_exit_reduces_reads() {
        let naive = LookupStrategy::default();
        let excel = LookupStrategy { early_exit_exact: true, binary_search_approx: true };
        let (v1, reads_naive) = run_with_strategy("VLOOKUP(20,A1:B10,2,FALSE)", naive);
        let (v2, reads_excel) = run_with_strategy("VLOOKUP(20,A1:B10,2,FALSE)", excel);
        assert_eq!(v1, v2);
        // naive scans all 10 keys + 1 result; Excel stops at row 2.
        assert_eq!(reads_naive, 11);
        assert_eq!(reads_excel, 3);
    }

    #[test]
    fn binary_search_reduces_reads() {
        let naive = LookupStrategy::default();
        let excel = LookupStrategy { early_exit_exact: true, binary_search_approx: true };
        let (v1, reads_naive) = run_with_strategy("VLOOKUP(77,A1:B10,2,TRUE)", naive);
        let (v2, reads_excel) = run_with_strategy("VLOOKUP(77,A1:B10,2,TRUE)", excel);
        assert_eq!(v1, t("s70"));
        assert_eq!(v2, v1);
        assert_eq!(reads_naive, 11);
        assert!(reads_excel <= 5, "binary search should probe ≤ ceil(log2 10)+1, got {reads_excel}");
    }

    #[test]
    fn hlookup_transposed() {
        let rows = vec![
            vec![n(1.0), n(2.0), n(3.0)],
            vec![t("a"), t("b"), t("c")],
        ];
        assert_eq!(eval_on(rows.clone(), "HLOOKUP(2,A1:C2,2,FALSE)"), t("b"));
        assert_eq!(eval_on(rows, "HLOOKUP(2.5,A1:C2,2,TRUE)"), t("b"));
    }

    #[test]
    fn index_bounds() {
        assert_eq!(eval_on(table(), "INDEX(A1:B10,3,2)"), t("s30"));
        assert_eq!(eval_on(table(), "INDEX(A1:B10,3)"), n(30.0));
        assert_eq!(eval_on(table(), "INDEX(A1:B10,11,1)"), Value::Error(CellError::Ref));
    }

    #[test]
    fn match_types() {
        assert_eq!(eval_on(table(), "MATCH(30,A1:A10,0)"), n(3.0));
        assert_eq!(eval_on(table(), "MATCH(35,A1:A10,1)"), n(3.0));
        assert_eq!(eval_on(table(), "MATCH(35,A1:A10)"), n(3.0));
        assert_eq!(eval_on(table(), "MATCH(31,A1:A10,0)"), Value::Error(CellError::Na));
        // descending data with -1
        let desc: Vec<Vec<Value>> = (0..5u32).map(|i| vec![n(f64::from(50 - i * 10))]).collect();
        assert_eq!(eval_on(desc, "MATCH(35,A1:A5,-1)"), n(2.0));
    }

    #[test]
    fn lookup_vector_form() {
        assert_eq!(eval_on(table(), "LOOKUP(45,A1:A10,B1:B10)"), t("s40"));
        assert_eq!(eval_on(table(), "LOOKUP(45,A1:A10)"), n(40.0));
    }

    #[test]
    fn xlookup_match_modes() {
        assert_eq!(eval_on(table(), "XLOOKUP(30,A1:A10,B1:B10)"), t("s30"));
        assert_eq!(
            eval_on(table(), "XLOOKUP(35,A1:A10,B1:B10)"),
            Value::Error(CellError::Na)
        );
        assert_eq!(eval_on(table(), "XLOOKUP(35,A1:A10,B1:B10,\"?\",-1)"), t("s30"));
        assert_eq!(eval_on(table(), "XLOOKUP(35,A1:A10,B1:B10,\"?\",1)"), t("s40"));
        assert_eq!(eval_on(table(), "XLOOKUP(999,A1:A10,B1:B10,\"missing\")"), t("missing"));
        assert_eq!(
            eval_on(table(), "XLOOKUP(5,A1:A10,B1:B10,\"?\",-1)"),
            t("?")
        );
    }

    #[test]
    fn xlookup_shape_mismatch() {
        assert_eq!(
            eval_on(table(), "XLOOKUP(30,A1:A10,B1:B9)"),
            Value::Error(CellError::Value)
        );
    }

    #[test]
    fn offset_reads_relative_cell() {
        assert_eq!(eval_on(table(), "OFFSET(A1,2,1)"), t("s30"));
        assert_eq!(eval_on(table(), "OFFSET(B3,0,-1)"), n(30.0));
        assert_eq!(eval_on(table(), "OFFSET(A1,-1,0)"), Value::Error(CellError::Ref));
    }

    #[test]
    fn choose_picks() {
        assert_eq!(eval_on(Vec::new(), "CHOOSE(2,\"a\",\"b\",\"c\")"), t("b"));
        assert_eq!(eval_on(Vec::new(), "CHOOSE(4,\"a\",\"b\")"), Value::Error(CellError::Value));
    }
}
