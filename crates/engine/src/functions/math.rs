//! Scalar math builtins.

use crate::error::CellError;
use crate::eval::EvalCtx;
use crate::value::Value;

use super::{check_arity, num, opt_num, Arg};

/// Wraps a fallible numeric computation into a `Value`.
fn num_result(r: Result<f64, CellError>) -> Value {
    match r {
        Ok(n) if n.is_finite() => Value::Number(n),
        Ok(_) => Value::Error(CellError::Num),
        Err(e) => Value::Error(e),
    }
}

/// `ABS(x)`.
pub fn abs(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    num_result(check_arity(args, 1, 1).and_then(|_| num(ctx, &args[0])).map(f64::abs))
}

/// `SIGN(x)` — -1, 0, or 1.
pub fn sign(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    num_result(
        check_arity(args, 1, 1)
            .and_then(|_| num(ctx, &args[0]))
            .map(|n| if n > 0.0 { 1.0 } else if n < 0.0 { -1.0 } else { 0.0 }),
    )
}

/// `INT(x)` — floor (toward negative infinity, as in the real systems).
pub fn int(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    num_result(check_arity(args, 1, 1).and_then(|_| num(ctx, &args[0])).map(f64::floor))
}

/// Common body for the ROUND family; `mode` ∈ {nearest, up, down}.
fn round_with(ctx: &EvalCtx<'_>, args: &[Arg], mode: fn(f64) -> f64) -> Value {
    num_result(check_arity(args, 1, 2).and_then(|_| {
        let x = num(ctx, &args[0])?;
        let digits = opt_num(ctx, args, 1, 0.0)?;
        let factor = 10f64.powi(digits as i32);
        Ok(mode(x * factor) / factor)
    }))
}

/// `ROUND(x, digits)` — half away from zero, as in spreadsheets.
pub fn round(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    round_with(ctx, args, |v| {
        // f64::round is half-away-from-zero, matching spreadsheet ROUND.
        v.round()
    })
}

/// `ROUNDUP(x, digits)` — away from zero.
pub fn roundup(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    round_with(ctx, args, |v| if v >= 0.0 { v.ceil() } else { v.floor() })
}

/// `ROUNDDOWN(x, digits)` — toward zero.
pub fn rounddown(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    round_with(ctx, args, f64::trunc)
}

/// `MOD(x, y)` — sign follows the divisor (spreadsheet convention,
/// unlike Rust's `%`).
pub fn modulo(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 2, 2)
        .and_then(|_| Ok((num(ctx, &args[0])?, num(ctx, &args[1])?)))
    {
        Ok((_, 0.0)) => Value::Error(CellError::Div0),
        Ok((x, y)) => Value::Number(x - y * (x / y).floor()),
        Err(e) => Value::Error(e),
    }
}

/// `POWER(x, y)`.
pub fn power(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    num_result(
        check_arity(args, 2, 2)
            .and_then(|_| Ok(num(ctx, &args[0])?.powf(num(ctx, &args[1])?))),
    )
}

/// `SQRT(x)` — negative input is `#NUM!`.
pub fn sqrt(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 1, 1).and_then(|_| num(ctx, &args[0])) {
        Ok(n) if n < 0.0 => Value::Error(CellError::Num),
        Ok(n) => Value::Number(n.sqrt()),
        Err(e) => Value::Error(e),
    }
}

/// `EXP(x)`.
pub fn exp(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    num_result(check_arity(args, 1, 1).and_then(|_| num(ctx, &args[0])).map(f64::exp))
}

/// `LN(x)` — non-positive input is `#NUM!`.
pub fn ln(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 1, 1).and_then(|_| num(ctx, &args[0])) {
        Ok(n) if n <= 0.0 => Value::Error(CellError::Num),
        Ok(n) => Value::Number(n.ln()),
        Err(e) => Value::Error(e),
    }
}

/// `LOG(x, [base=10])`.
pub fn log(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 1, 2).and_then(|_| {
        let x = num(ctx, &args[0])?;
        let base = opt_num(ctx, args, 1, 10.0)?;
        Ok((x, base))
    }) {
        Ok((x, base)) if x <= 0.0 || base <= 0.0 || base == 1.0 => Value::Error(CellError::Num),
        Ok((x, base)) => Value::Number(x.log(base)),
        Err(e) => Value::Error(e),
    }
}

/// `LOG10(x)`.
pub fn log10(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 1, 1).and_then(|_| num(ctx, &args[0])) {
        Ok(n) if n <= 0.0 => Value::Error(CellError::Num),
        Ok(n) => Value::Number(n.log10()),
        Err(e) => Value::Error(e),
    }
}

/// `PI()`.
pub fn pi(_ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 0, 0) {
        Ok(()) => Value::Number(std::f64::consts::PI),
        Err(e) => Value::Error(e),
    }
}

#[cfg(test)]
mod tests {
    use crate::error::CellError;
    use crate::functions::testutil::{eval_empty, n};
    use crate::value::Value;

    #[test]
    fn abs_sign_int() {
        assert_eq!(eval_empty("ABS(-3.5)"), n(3.5));
        assert_eq!(eval_empty("SIGN(-9)"), n(-1.0));
        assert_eq!(eval_empty("SIGN(0)"), n(0.0));
        assert_eq!(eval_empty("INT(-1.5)"), n(-2.0));
        assert_eq!(eval_empty("INT(1.9)"), n(1.0));
    }

    #[test]
    fn round_family() {
        assert_eq!(eval_empty("ROUND(2.5,0)"), n(3.0));
        assert_eq!(eval_empty("ROUND(-2.5,0)"), n(-3.0));
        #[allow(clippy::approx_constant)]
        let rounded = n(3.14);
        assert_eq!(eval_empty("ROUND(3.14159,2)"), rounded);
        assert_eq!(eval_empty("ROUNDUP(1.01,0)"), n(2.0));
        assert_eq!(eval_empty("ROUNDUP(-1.01,0)"), n(-2.0));
        assert_eq!(eval_empty("ROUNDDOWN(1.99,0)"), n(1.0));
        assert_eq!(eval_empty("ROUND(1234.5678,-2)"), n(1200.0));
    }

    #[test]
    fn mod_follows_divisor_sign() {
        assert_eq!(eval_empty("MOD(7,3)"), n(1.0));
        assert_eq!(eval_empty("MOD(-7,3)"), n(2.0));
        assert_eq!(eval_empty("MOD(7,-3)"), n(-2.0));
        assert_eq!(eval_empty("MOD(7,0)"), Value::Error(CellError::Div0));
    }

    #[test]
    fn power_sqrt_domain() {
        assert_eq!(eval_empty("POWER(2,8)"), n(256.0));
        assert_eq!(eval_empty("SQRT(16)"), n(4.0));
        assert_eq!(eval_empty("SQRT(-1)"), Value::Error(CellError::Num));
    }

    #[test]
    fn logarithms() {
        assert_eq!(eval_empty("LOG10(1000)"), n(3.0));
        assert_eq!(eval_empty("LOG(8,2)"), n(3.0));
        assert_eq!(eval_empty("LOG(100)"), n(2.0));
        assert_eq!(eval_empty("LN(0)"), Value::Error(CellError::Num));
        assert_eq!(eval_empty("LOG(8,1)"), Value::Error(CellError::Num));
    }

    #[test]
    fn exp_and_pi() {
        assert_eq!(eval_empty("EXP(0)"), n(1.0));
        let v = eval_empty("PI()").as_number().unwrap();
        assert!((v - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn arity_errors() {
        assert_eq!(eval_empty("ABS()"), Value::Error(CellError::Value));
        assert_eq!(eval_empty("ABS(1,2)"), Value::Error(CellError::Value));
        assert_eq!(eval_empty("PI(1)"), Value::Error(CellError::Value));
    }
}
