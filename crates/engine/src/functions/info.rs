//! Information builtins.

use crate::error::CellError;
use crate::eval::EvalCtx;
use crate::value::Value;

use super::{check_arity, scalar, Arg};

/// Shared body for the IS* predicates.
fn predicate(ctx: &EvalCtx<'_>, args: &[Arg], f: fn(&Value) -> bool) -> Value {
    match check_arity(args, 1, 1) {
        Ok(()) => Value::Bool(f(&scalar(ctx, &args[0]))),
        Err(e) => Value::Error(e),
    }
}

/// `ISBLANK(x)`.
pub fn isblank(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    predicate(ctx, args, Value::is_empty)
}

/// `ISNUMBER(x)`.
pub fn isnumber(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    predicate(ctx, args, |v| matches!(v, Value::Number(_)))
}

/// `ISTEXT(x)`.
pub fn istext(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    predicate(ctx, args, |v| matches!(v, Value::Text(_)))
}

/// `ISLOGICAL(x)`.
pub fn islogical(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    predicate(ctx, args, |v| matches!(v, Value::Bool(_)))
}

/// `ISERROR(x)`.
pub fn iserror(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    predicate(ctx, args, Value::is_error)
}

/// `ISNA(x)`.
pub fn isna(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    predicate(ctx, args, |v| matches!(v, Value::Error(CellError::Na)))
}

/// `ROW([ref])` — 1-based row of the reference, or of the current cell.
pub fn row(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match args {
        [] => Value::Number(f64::from(ctx.current.row + 1)),
        [Arg::Range(r)] => Value::Number(f64::from(r.start.row + 1)),
        _ => Value::Error(CellError::Value),
    }
}

/// `COLUMN([ref])` — 1-based column of the reference, or of the current
/// cell.
pub fn column(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match args {
        [] => Value::Number(f64::from(ctx.current.col + 1)),
        [Arg::Range(r)] => Value::Number(f64::from(r.start.col + 1)),
        _ => Value::Error(CellError::Value),
    }
}

#[cfg(test)]
mod tests {
    use crate::functions::testutil::{eval_empty, eval_on, n, t};
    use crate::value::Value;

    #[test]
    fn predicates() {
        assert_eq!(eval_empty("ISBLANK(A1)"), Value::Bool(true));
        assert_eq!(eval_on(vec![vec![n(1.0)]], "ISNUMBER(A1)"), Value::Bool(true));
        assert_eq!(eval_on(vec![vec![t("x")]], "ISTEXT(A1)"), Value::Bool(true));
        assert_eq!(eval_empty("ISLOGICAL(TRUE)"), Value::Bool(true));
        assert_eq!(eval_empty("ISERROR(#DIV/0!)"), Value::Bool(true));
        assert_eq!(eval_empty("ISNA(#N/A)"), Value::Bool(true));
        assert_eq!(eval_empty("ISNA(#REF!)"), Value::Bool(false));
    }

    #[test]
    fn row_column_of_reference() {
        assert_eq!(eval_empty("ROW(C7)"), n(7.0));
        assert_eq!(eval_empty("COLUMN(C7)"), n(3.0));
        assert_eq!(eval_empty("ROW(B2:D9)"), n(2.0));
    }

    #[test]
    fn row_column_of_current_cell() {
        // testutil evaluates at row 1, column Z (26).
        assert_eq!(eval_empty("ROW()"), n(1.0));
        assert_eq!(eval_empty("COLUMN()"), n(26.0));
    }

    #[test]
    fn na_function() {
        assert_eq!(eval_empty("ISNA(NA())"), Value::Bool(true));
    }
}
