//! Text builtins.

use crate::error::CellError;
use crate::eval::EvalCtx;
use crate::value::Value;

use super::{check_arity, for_each_value, num, scalar, text_of, Arg};

/// `CONCATENATE(args...)`.
pub fn concatenate(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    let mut out = String::new();
    for a in args {
        match text_of(ctx, a) {
            Ok(s) => out.push_str(&s),
            Err(e) => return Value::Error(e),
        }
    }
    Value::text(out)
}

/// `LEN(text)` — character (not byte) count.
pub fn len(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 1, 1).and_then(|_| text_of(ctx, &args[0])) {
        Ok(s) => Value::Number(s.chars().count() as f64),
        Err(e) => Value::Error(e),
    }
}

/// `LEFT(text, [n=1])`.
pub fn left(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 1, 2).and_then(|_| {
        let s = text_of(ctx, &args[0])?;
        let n = super::opt_num(ctx, args, 1, 1.0)?;
        Ok((s, n))
    }) {
        Ok((_, n)) if n < 0.0 => Value::Error(CellError::Value),
        Ok((s, n)) => Value::text(s.chars().take(n as usize).collect::<String>()),
        Err(e) => Value::Error(e),
    }
}

/// `RIGHT(text, [n=1])`.
pub fn right(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 1, 2).and_then(|_| {
        let s = text_of(ctx, &args[0])?;
        let n = super::opt_num(ctx, args, 1, 1.0)?;
        Ok((s, n))
    }) {
        Ok((_, n)) if n < 0.0 => Value::Error(CellError::Value),
        Ok((s, n)) => {
            let chars: Vec<char> = s.chars().collect();
            let k = (n as usize).min(chars.len());
            Value::text(chars[chars.len() - k..].iter().collect::<String>())
        }
        Err(e) => Value::Error(e),
    }
}

/// `MID(text, start, len)` — `start` is 1-based.
pub fn mid(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 3, 3).and_then(|_| {
        Ok((text_of(ctx, &args[0])?, num(ctx, &args[1])?, num(ctx, &args[2])?))
    }) {
        Ok((_, start, n)) if start < 1.0 || n < 0.0 => Value::Error(CellError::Value),
        Ok((s, start, n)) => {
            Value::text(s.chars().skip(start as usize - 1).take(n as usize).collect::<String>())
        }
        Err(e) => Value::Error(e),
    }
}

/// `UPPER(text)`.
pub fn upper(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 1, 1).and_then(|_| text_of(ctx, &args[0])) {
        Ok(s) => Value::text(s.to_uppercase()),
        Err(e) => Value::Error(e),
    }
}

/// `LOWER(text)`.
pub fn lower(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 1, 1).and_then(|_| text_of(ctx, &args[0])) {
        Ok(s) => Value::text(s.to_lowercase()),
        Err(e) => Value::Error(e),
    }
}

/// `TRIM(text)` — strips leading/trailing spaces and collapses runs.
pub fn trim(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 1, 1).and_then(|_| text_of(ctx, &args[0])) {
        Ok(s) => Value::text(s.split_whitespace().collect::<Vec<_>>().join(" ")),
        Err(e) => Value::Error(e),
    }
}

/// `FIND(needle, haystack, [start=1])` — case-sensitive, 1-based; `#VALUE!`
/// when absent.
pub fn find(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 2, 3).and_then(|_| {
        let needle = text_of(ctx, &args[0])?;
        let hay = text_of(ctx, &args[1])?;
        let start = super::opt_num(ctx, args, 2, 1.0)?;
        Ok((needle, hay, start))
    }) {
        Ok((_, _, start)) if start < 1.0 => Value::Error(CellError::Value),
        Ok((needle, hay, start)) => {
            let chars: Vec<char> = hay.chars().collect();
            let from = (start as usize - 1).min(chars.len());
            let tail: String = chars[from..].iter().collect();
            match tail.find(&needle) {
                Some(byte_pos) => {
                    let chars_before = tail[..byte_pos].chars().count();
                    Value::Number((from + chars_before + 1) as f64)
                }
                None => Value::Error(CellError::Value),
            }
        }
        Err(e) => Value::Error(e),
    }
}

/// `SUBSTITUTE(text, old, new, [instance])` — replaces all occurrences, or
/// only the `instance`-th when given.
pub fn substitute(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 3, 4).and_then(|_| {
        Ok((
            text_of(ctx, &args[0])?,
            text_of(ctx, &args[1])?,
            text_of(ctx, &args[2])?,
            match args.get(3) {
                Some(a) => Some(num(ctx, a)?),
                None => None,
            },
        ))
    }) {
        Ok((s, old, _, _)) if old.is_empty() => Value::text(s),
        Ok((s, old, new, None)) => Value::text(s.replace(&old, &new)),
        Ok((_, _, _, Some(k))) if k < 1.0 => Value::Error(CellError::Value),
        Ok((s, old, new, Some(k))) => {
            let k = k as usize;
            let mut out = String::with_capacity(s.len());
            let mut rest = s.as_str();
            let mut seen = 0usize;
            while let Some(pos) = rest.find(&old) {
                seen += 1;
                out.push_str(&rest[..pos]);
                if seen == k {
                    out.push_str(&new);
                } else {
                    out.push_str(&old);
                }
                rest = &rest[pos + old.len()..];
            }
            out.push_str(rest);
            Value::text(out)
        }
        Err(e) => Value::Error(e),
    }
}

/// `REPT(text, n)`.
pub fn rept(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 2, 2)
        .and_then(|_| Ok((text_of(ctx, &args[0])?, num(ctx, &args[1])?)))
    {
        Ok((_, n)) if n < 0.0 => Value::Error(CellError::Value),
        Ok((s, n)) => Value::text(s.repeat(n as usize)),
        Err(e) => Value::Error(e),
    }
}

/// `VALUE(text)` — parses text to a number.
pub fn value(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 1, 1).and_then(|_| num(ctx, &args[0])) {
        Ok(n) => Value::Number(n),
        Err(e) => Value::Error(e),
    }
}

/// `EXACT(a, b)` — case-sensitive text equality.
pub fn exact(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    match check_arity(args, 2, 2)
        .and_then(|_| Ok((text_of(ctx, &args[0])?, text_of(ctx, &args[1])?)))
    {
        Ok((a, b)) => Value::Bool(a == b),
        Err(e) => Value::Error(e),
    }
}

/// `TEXTJOIN(delimiter, ignore_empty, args...)`.
pub fn textjoin(ctx: &EvalCtx<'_>, args: &[Arg]) -> Value {
    if let Err(e) = check_arity(args, 3, usize::MAX) {
        return Value::Error(e);
    }
    let delim = match text_of(ctx, &args[0]) {
        Ok(s) => s,
        Err(e) => return Value::Error(e),
    };
    let ignore_empty = match scalar(ctx, &args[1]).coerce_bool() {
        Ok(b) => b,
        Err(e) => return Value::Error(e),
    };
    let mut parts: Vec<String> = Vec::new();
    let mut err: Option<CellError> = None;
    for a in &args[2..] {
        for_each_value(ctx, a, &mut |v| {
            if err.is_some() {
                return;
            }
            if ignore_empty && v.is_empty() {
                return;
            }
            match v.coerce_text() {
                Ok(s) => parts.push(s),
                Err(e) => err = Some(e),
            }
        });
    }
    match err {
        Some(e) => Value::Error(e),
        None => Value::text(parts.join(&delim)),
    }
}

#[cfg(test)]
mod tests {
    use crate::error::CellError;
    use crate::functions::testutil::{eval_empty, eval_on, n, t};
    use crate::value::Value;

    #[test]
    fn concatenate_and_len() {
        assert_eq!(eval_empty("CONCATENATE(\"a\",1,TRUE)"), t("a1TRUE"));
        assert_eq!(eval_empty("LEN(\"hello\")"), n(5.0));
        assert_eq!(eval_empty("LEN(\"naïve\")"), n(5.0)); // chars, not bytes
    }

    #[test]
    fn left_right_mid() {
        assert_eq!(eval_empty("LEFT(\"storm\",2)"), t("st"));
        assert_eq!(eval_empty("LEFT(\"storm\")"), t("s"));
        assert_eq!(eval_empty("RIGHT(\"storm\",3)"), t("orm"));
        assert_eq!(eval_empty("RIGHT(\"ab\",9)"), t("ab"));
        assert_eq!(eval_empty("MID(\"storm\",2,3)"), t("tor"));
        assert_eq!(eval_empty("MID(\"storm\",0,3)"), Value::Error(CellError::Value));
    }

    #[test]
    fn case_and_trim() {
        assert_eq!(eval_empty("UPPER(\"Storm\")"), t("STORM"));
        assert_eq!(eval_empty("LOWER(\"Storm\")"), t("storm"));
        assert_eq!(eval_empty("TRIM(\"  a   b  \")"), t("a b"));
    }

    #[test]
    fn find_positions() {
        assert_eq!(eval_empty("FIND(\"o\",\"storm\")"), n(3.0));
        assert_eq!(eval_empty("FIND(\"o\",\"storm\",4)"), Value::Error(CellError::Value));
        assert_eq!(eval_empty("FIND(\"t\",\"tattle\",2)"), n(3.0));
        assert_eq!(eval_empty("FIND(\"x\",\"storm\")"), Value::Error(CellError::Value));
    }

    #[test]
    fn substitute_all_and_instance() {
        assert_eq!(eval_empty("SUBSTITUTE(\"aXbXc\",\"X\",\"-\")"), t("a-b-c"));
        assert_eq!(eval_empty("SUBSTITUTE(\"aXbXc\",\"X\",\"-\",2)"), t("aXb-c"));
        assert_eq!(eval_empty("SUBSTITUTE(\"aXbXc\",\"X\",\"-\",5)"), t("aXbXc"));
        assert_eq!(eval_empty("SUBSTITUTE(\"abc\",\"\",\"-\")"), t("abc"));
    }

    #[test]
    fn rept_value_exact() {
        assert_eq!(eval_empty("REPT(\"ab\",3)"), t("ababab"));
        assert_eq!(eval_empty("REPT(\"ab\",-1)"), Value::Error(CellError::Value));
        assert_eq!(eval_empty("VALUE(\" 42 \")"), n(42.0));
        assert_eq!(eval_empty("EXACT(\"a\",\"A\")"), Value::Bool(false));
        assert_eq!(eval_empty("EXACT(\"a\",\"a\")"), Value::Bool(true));
    }

    #[test]
    fn textjoin_over_range() {
        let rows = vec![vec![t("a")], vec![Value::Empty], vec![t("c")]];
        assert_eq!(eval_on(rows.clone(), "TEXTJOIN(\",\",TRUE,A1:A3)"), t("a,c"));
        assert_eq!(eval_on(rows, "TEXTJOIN(\",\",FALSE,A1:A3)"), t("a,,c"));
    }
}
