//! Structural invariant checks for the differential oracle (DESIGN.md §9).
//!
//! These walk a whole sheet and are O(cells + formulas·precedents), so they
//! belong in tests and the fuzz harness, never on the hot path. Each check
//! returns `Err(description)` naming the first violating cell so a shrunk
//! reproducer points straight at the fault.

use std::collections::HashSet;

use crate::addr::CellAddr;
use crate::depgraph::Precedents;
use crate::sheet::Sheet;
use crate::value::Value;

/// No stored cell value may be NaN or ±inf. User input never parses to a
/// non-finite number ([`crate::value::parse_number`]) and evaluation maps
/// overflow to `#NUM!`, so a non-finite number in the grid means a coercion
/// or arithmetic path leaked one — and would poison `sheet_cmp`'s total
/// order the next time a sort or lookup touches it.
pub fn check_finite_grid(sheet: &Sheet) -> Result<(), String> {
    let Some(used) = sheet.used_range() else { return Ok(()) };
    for addr in used.iter() {
        if let Value::Number(n) = sheet.value(addr) {
            if !n.is_finite() {
                return Err(format!(
                    "non-finite value {n} stored at {}",
                    addr.to_a1()
                ));
            }
        }
    }
    Ok(())
}

/// The dependency graph must mirror the formulas exactly, in both
/// directions:
///
/// 1. every formula cell is registered, with precedents equal to a fresh
///    [`Precedents::of`] extraction from its expression;
/// 2. every registered address still holds a formula (no stale entries
///    surviving an overwrite, clear, or structural rebuild);
/// 3. the inverted dependents index answers `dependents_of` for each cell
///    and range precedent (probed at the range's corners).
///
/// A violation means dirty propagation would skip or over-visit formulas —
/// exactly the class of bug that produces stale values only under
/// *incremental* recalc, which full-recalc tests can never see.
pub fn check_deps(sheet: &Sheet) -> Result<(), String> {
    let deps = sheet.deps();

    // Direction 1: grid -> graph.
    let mut formula_cells: HashSet<CellAddr> = HashSet::new();
    if let Some(used) = sheet.used_range() {
        for addr in used.iter() {
            let Some(expr) = sheet.formula_expr(addr) else { continue };
            formula_cells.insert(addr);
            let expected = Precedents::of(expr);
            match deps.precedents_of(addr) {
                None => {
                    return Err(format!(
                        "formula at {} missing from the dep graph",
                        addr.to_a1()
                    ));
                }
                Some(actual) if *actual != expected => {
                    return Err(format!(
                        "stale precedents at {}: graph has {actual:?}, \
                         formula reads {expected:?}",
                        addr.to_a1()
                    ));
                }
                Some(_) => {}
            }

            // Direction 3: every precedent's dependents list names us.
            let mut out = Vec::new();
            for &p in &expected.cells {
                out.clear();
                deps.dependents_of(p, &mut out);
                if !out.contains(&addr) {
                    return Err(format!(
                        "dependents index at {} omits formula {}",
                        p.to_a1(),
                        addr.to_a1()
                    ));
                }
            }
            for r in &expected.ranges {
                for probe in [
                    r.start,
                    r.end,
                    CellAddr::new(r.start.row, r.end.col),
                    CellAddr::new(r.end.row, r.start.col),
                ] {
                    out.clear();
                    deps.dependents_of(probe, &mut out);
                    if !out.contains(&addr) {
                        return Err(format!(
                            "range watcher for {} misses probe {} \
                             (formula {})",
                            r.to_a1(),
                            probe.to_a1(),
                            addr.to_a1()
                        ));
                    }
                }
            }
        }
    }

    // Direction 2: graph -> grid.
    for addr in deps.formula_addrs() {
        if !formula_cells.contains(&addr) {
            return Err(format!(
                "dep graph lists {} but no formula lives there",
                addr.to_a1()
            ));
        }
    }
    if deps.len() != formula_cells.len() {
        return Err(format!(
            "dep graph tracks {} formulas, grid holds {}",
            deps.len(),
            formula_cells.len()
        ));
    }

    Ok(())
}

/// Runs every audit; convenience for the oracle's per-op hook.
pub fn check_all(sheet: &Sheet) -> Result<(), String> {
    check_finite_grid(sheet)?;
    check_deps(sheet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recalc;

    fn a(s: &str) -> CellAddr {
        CellAddr::parse(s).unwrap()
    }

    #[test]
    fn clean_sheet_passes_all_audits() {
        let mut s = Sheet::new();
        for i in 0..8u32 {
            s.set_value(CellAddr::new(i, 0), i64::from(i));
        }
        s.set_formula_str(a("B1"), "=SUM(A1:A8)").unwrap();
        s.set_formula_str(a("B2"), "=A3*2").unwrap();
        s.set_formula_str(a("B3"), "=B1+B2").unwrap();
        recalc::recalc_all(&mut s);
        check_all(&s).unwrap();
    }

    #[test]
    fn non_finite_stored_value_is_flagged() {
        let mut s = Sheet::new();
        s.set_value(a("A1"), Value::Number(f64::NAN));
        let err = check_finite_grid(&s).unwrap_err();
        assert!(err.contains("A1"), "got: {err}");
    }

    #[test]
    fn overwritten_formula_leaves_no_stale_entry() {
        let mut s = Sheet::new();
        s.set_formula_str(a("B1"), "=A1+1").unwrap();
        s.set_value(a("B1"), 5i64); // plain value replaces the formula
        check_deps(&s).unwrap();
    }

    #[test]
    fn structural_edit_keeps_graph_consistent() {
        let mut s = Sheet::new();
        for i in 0..6u32 {
            s.set_value(CellAddr::new(i, 0), i64::from(i + 1));
        }
        s.set_formula_str(a("C1"), "=SUM(A2:A5)").unwrap();
        s.apply(crate::ops::Op::DeleteRows { at: 2, count: 2 }).unwrap();
        recalc::recalc_all(&mut s);
        check_all(&s).unwrap();
    }
}
