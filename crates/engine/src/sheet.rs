//! The sheet: a grid of cells, its dependency graph, filter state, and the
//! cost meter. This is the engine's main API surface.

use crate::addr::{CellAddr, CellRef, Range};
use crate::cell::{Cell, CellContent};
use crate::compile::ProgramCache;
use crate::depgraph::DepGraph;
use crate::error::EngineError;
use crate::eval::context::DEFAULT_NOW_SERIAL;
use crate::eval::{CellSource, EvalCtx, LookupStrategy};
use crate::formula::{Expr, NameResolver, RangeRef};
use crate::grid::{CellGet, Grid, GridStore};
use crate::index::{ColumnBuilder, IndexStore};
use crate::meter::{Meter, Primitive};
use crate::recalc::RecalcOptions;
use crate::value::Value;

/// Physical storage layout for a sheet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Layout {
    /// Row-major storage — the layout the benchmarked systems effectively
    /// use (§5.2 finds no evidence of columnar layouts).
    #[default]
    RowMajor,
    /// Column-major storage — the database-style alternative.
    ColumnMajor,
}

/// A single spreadsheet sheet.
#[derive(Debug)]
pub struct Sheet {
    grid: GridStore,
    deps: DepGraph,
    meter: Meter,
    /// Per-row hidden flags (filter state); empty means nothing hidden.
    hidden: Vec<bool>,
    lookup: LookupStrategy,
    now_serial: f64,
    /// Named ranges (uppercased name → range).
    names: NameTable,
    /// Executor knobs used by `recalc_all` / `recalc_from`.
    recalc_opts: RecalcOptions,
    /// Compiled-backend program cache, keyed by R1C1 template. Programs
    /// are pure functions of their key, so template entries can never go
    /// stale; only the per-address memo tracks sheet state. Formula edits
    /// drop the edited address's memo entry (`invalidate_addr`);
    /// dependency rebuilds clear the memo but keep pure templates
    /// (`retain_pure`), guided by the `analyze` facts on each program.
    programs: ProgramCache,
    /// Maintained column indexes (the optimized fourth system's lookup
    /// path). Empty — and costing nothing — unless columns are registered
    /// or [`Sheet::set_auto_index`] is on.
    indexes: IndexStore,
    /// When set, `ensure_indexes` registers every formula-free column
    /// automatically (and the recalc entry points call it).
    auto_index: bool,
}

/// Unified engine configuration: every per-sheet knob in one value, so
/// drivers (the system simulator, the oracle, benches) configure a sheet
/// with a single call instead of a trail of ad-hoc setters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Lookup-strategy switches for `VLOOKUP`-family evaluation.
    pub lookup: LookupStrategy,
    /// The deterministic `NOW()`/`TODAY()` serial.
    pub now_serial: f64,
    /// Recalculation executor knobs (parallelism, backend, kernels, delta).
    pub recalc: RecalcOptions,
    /// Automatic column indexing (the optimized fourth system).
    pub auto_index: bool,
    /// Resident-byte budget for the grid's typed chunks; cold chunks
    /// spill to a page file under pressure (DESIGN.md §14). `None` means
    /// unbounded. Defaults to the `SSBENCH_GRID_BUDGET` env knob.
    pub grid_budget: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            lookup: LookupStrategy::default(),
            now_serial: DEFAULT_NOW_SERIAL,
            recalc: RecalcOptions::default(),
            auto_index: false,
            grid_budget: crate::grid::env_grid_budget(),
        }
    }
}

impl EngineConfig {
    /// A builder starting from the defaults.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder { cfg: EngineConfig::default() }
    }
}

/// Builder for [`EngineConfig`].
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
}

impl EngineConfigBuilder {
    /// Sets the lookup strategy.
    pub fn lookup(mut self, lookup: LookupStrategy) -> Self {
        self.cfg.lookup = lookup;
        self
    }

    /// Sets the deterministic `NOW()` serial.
    pub fn now_serial(mut self, serial: f64) -> Self {
        self.cfg.now_serial = serial;
        self
    }

    /// Sets the recalculation options.
    pub fn recalc(mut self, recalc: RecalcOptions) -> Self {
        self.cfg.recalc = recalc;
        self
    }

    /// Enables or disables automatic column indexing.
    pub fn auto_index(mut self, on: bool) -> Self {
        self.cfg.auto_index = on;
        self
    }

    /// Sets the grid's resident-byte budget (`None` = unbounded).
    pub fn grid_budget(mut self, budget: Option<usize>) -> Self {
        self.cfg.grid_budget = budget;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> EngineConfig {
        self.cfg
    }
}

/// The sheet's named-range table; implements the parser's name resolver.
#[derive(Debug, Default)]
struct NameTable(std::collections::HashMap<String, Range>);

impl NameResolver for NameTable {
    fn resolve(&self, name: &str) -> Option<RangeRef> {
        self.0.get(&name.to_ascii_uppercase()).map(|r| RangeRef {
            start: CellRef::absolute(r.start),
            end: CellRef::absolute(r.end),
        })
    }
}

impl Sheet {
    /// An empty row-major sheet.
    pub fn new() -> Self {
        Sheet::with_layout(Layout::RowMajor, 0, 0)
    }

    /// An empty sheet with the given layout and initial extent.
    pub fn with_layout(layout: Layout, rows: u32, cols: u32) -> Self {
        let grid = match layout {
            Layout::RowMajor => GridStore::row_major(rows, cols),
            Layout::ColumnMajor => GridStore::col_major(rows, cols),
        };
        Sheet {
            grid,
            deps: DepGraph::new(),
            meter: Meter::new(),
            hidden: Vec::new(),
            lookup: LookupStrategy::default(),
            now_serial: DEFAULT_NOW_SERIAL,
            names: NameTable::default(),
            recalc_opts: RecalcOptions::default(),
            programs: ProgramCache::new(),
            indexes: IndexStore::default(),
            auto_index: false,
        }
    }

    // --- introspection -------------------------------------------------

    /// The cost meter.
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// The compiled-backend program cache (templates compiled so far,
    /// hit/miss tallies).
    pub fn program_cache(&self) -> &ProgramCache {
        &self.programs
    }

    /// The underlying grid storage, for slice-level access by the
    /// compiled backend's range kernels.
    pub(crate) fn grid_store(&self) -> &GridStore {
        &self.grid
    }

    /// The physical storage layout of the grid. Stable across every
    /// operation, including structural edits that rebuild the grid.
    pub fn layout(&self) -> Layout {
        match self.grid {
            GridStore::Row(_) => Layout::RowMajor,
            GridStore::Col(_) => Layout::ColumnMajor,
        }
    }

    /// The serial `NOW()` returns (see [`Sheet::set_now_serial`]).
    pub fn now_serial(&self) -> f64 {
        self.now_serial
    }

    /// Materialized row count.
    pub fn nrows(&self) -> u32 {
        self.grid.nrows()
    }

    /// Materialized column count.
    pub fn ncols(&self) -> u32 {
        self.grid.ncols()
    }

    /// The used range (`None` for an empty sheet).
    pub fn used_range(&self) -> Option<Range> {
        if self.nrows() == 0 || self.ncols() == 0 {
            None
        } else {
            Some(Range::new(
                CellAddr::new(0, 0),
                CellAddr::new(self.nrows() - 1, self.ncols() - 1),
            ))
        }
    }

    /// The cell at `addr`, when inside the materialized extent. Since the
    /// chunked grid (§14), typed slots reconstruct their `Cell` on read —
    /// the result is a [`CellGet`] that derefs to [`Cell`] (formulas and
    /// styled cells always borrow real storage).
    pub fn cell(&self, addr: CellAddr) -> Option<CellGet<'_>> {
        self.grid.get(addr)
    }

    /// The displayed value at `addr` (empty outside the grid). Does not
    /// charge the meter — metered reads go through evaluation contexts and
    /// operations.
    pub fn value(&self, addr: CellAddr) -> Value {
        self.grid.value_at(addr)
    }

    /// The formula-bar text at `addr`.
    pub fn input_text(&self, addr: CellAddr) -> String {
        self.grid.get(addr).map(|c| c.input_text()).unwrap_or_default()
    }

    /// Whether `addr` holds a formula.
    pub fn is_formula(&self, addr: CellAddr) -> bool {
        self.grid.get(addr).is_some_and(|c| c.is_formula())
    }

    /// Number of formula cells.
    pub fn formula_count(&self) -> usize {
        self.deps.len()
    }

    /// The dependency graph (read-only).
    pub fn deps(&self) -> &DepGraph {
        &self.deps
    }

    /// The parsed expression of the formula at `addr`.
    pub fn formula_expr(&self, addr: CellAddr) -> Option<&Expr> {
        // Formulas always live in general storage, so the borrowed arm is
        // the only one that can hold one (typed slots are plain values).
        match self.grid.get(addr)? {
            CellGet::Borrowed(Cell { content: CellContent::Formula(f), .. }) => Some(&f.expr),
            _ => None,
        }
    }

    // --- configuration --------------------------------------------------

    /// Sets the lookup strategy used by `VLOOKUP`-family evaluation.
    pub fn set_lookup_strategy(&mut self, lookup: LookupStrategy) {
        self.lookup = lookup;
    }

    /// The current lookup strategy.
    pub fn lookup_strategy(&self) -> LookupStrategy {
        self.lookup
    }

    /// Sets the serial returned by `NOW()` (deterministic clock).
    pub fn set_now_serial(&mut self, serial: f64) {
        self.now_serial = serial;
    }

    /// Sets the recalculation executor knobs (parallel worker cap and the
    /// plan-size threshold below which recalc stays sequential).
    pub fn set_recalc_options(&mut self, opts: RecalcOptions) {
        self.recalc_opts = opts;
    }

    /// The recalculation executor knobs.
    pub fn recalc_options(&self) -> RecalcOptions {
        self.recalc_opts
    }

    /// Applies a whole [`EngineConfig`] in one call (the preferred
    /// configuration surface; the individual setters remain for granular
    /// adjustments).
    pub fn configure(&mut self, cfg: EngineConfig) {
        self.lookup = cfg.lookup;
        self.now_serial = cfg.now_serial;
        self.recalc_opts = cfg.recalc;
        self.auto_index = cfg.auto_index;
        self.grid.set_budget(cfg.grid_budget);
    }

    /// The current configuration as one value.
    pub fn config(&self) -> EngineConfig {
        EngineConfig {
            lookup: self.lookup,
            now_serial: self.now_serial,
            recalc: self.recalc_opts,
            auto_index: self.auto_index,
            grid_budget: self.grid.budget(),
        }
    }

    // --- grid memory ------------------------------------------------------

    /// Sets (or clears) the grid's resident-byte budget; immediately
    /// spills down to fit.
    pub fn set_grid_budget(&mut self, budget: Option<usize>) {
        self.grid.set_budget(budget);
    }

    /// The grid's resident-byte budget, if any.
    pub fn grid_budget(&self) -> Option<usize> {
        self.grid.budget()
    }

    /// Bytes of typed chunk data currently resident (what the budget
    /// bounds; general-storage chunks are wired and not counted).
    pub fn grid_resident_bytes(&self) -> usize {
        self.grid.resident_spill_bytes()
    }

    /// Cumulative spill/load/fault counters for the grid's buffer pool.
    pub fn grid_spill_stats(&self) -> crate::grid::SpillStats {
        self.grid.spill_stats()
    }

    /// Approximate heap bytes held by the grid (memory regression gates).
    pub fn grid_heap_bytes(&self) -> usize {
        self.grid.approx_heap_bytes()
    }

    /// Checks every grid storage invariant; panics on violation (test and
    /// harness aid).
    pub fn validate_grid(&self) {
        self.grid.validate();
    }

    /// Loads and pins the typed chunks under `ranges` (up to `max_bytes`
    /// in total) so a recalc wave's read set stays resident; paired with
    /// [`Sheet::unpin_grid`]. Returns the bytes pinned.
    pub(crate) fn pin_grid_windows(&mut self, ranges: &[Range], max_bytes: usize) -> usize {
        let mut pinned = 0usize;
        for r in ranges {
            if pinned >= max_bytes {
                break;
            }
            pinned += self.grid.pin_range(*r, max_bytes - pinned);
        }
        pinned
    }

    /// Drops every grid pin.
    pub(crate) fn unpin_grid(&mut self) {
        self.grid.unpin_all();
    }

    // --- column indexes ---------------------------------------------------

    /// Enables automatic column indexing: every recalculation entry point
    /// first registers and builds an index over each formula-free column.
    pub fn set_auto_index(&mut self, on: bool) {
        self.auto_index = on;
    }

    /// Whether automatic column indexing is on.
    pub fn auto_index(&self) -> bool {
        self.auto_index
    }

    /// The column-index store (probe state, for tests and reports).
    pub fn index_store(&self) -> &IndexStore {
        &self.indexes
    }

    /// Registers one column for indexing (built by the next
    /// [`Sheet::ensure_indexes`]); no-op on a column that ever held a
    /// formula.
    pub fn register_index(&mut self, col: u32) {
        self.indexes.register(col);
    }

    /// Builds every registered-but-pending column index; with auto-indexing
    /// on, first registers every materialized column (columns holding
    /// formulas are permanently excluded by the build). Rebuild cost is
    /// charged to the meter as one `IndexProbe` per indexed cell.
    pub fn ensure_indexes(&mut self) {
        if self.auto_index {
            for col in 0..self.ncols() {
                self.indexes.register(col);
            }
        }
        for col in self.indexes.pending_cols() {
            self.build_index(col);
        }
    }

    /// Builds one pending column index from the grid.
    fn build_index(&mut self, col: u32) {
        let nrows = self.nrows();
        if col >= self.ncols() {
            // Registered beyond the materialized extent: nothing to index
            // yet; stays pending until the column exists.
            return;
        }
        let mut builder = ColumnBuilder::default();
        if nrows > 0 {
            let range = Range::new(CellAddr::new(0, col), CellAddr::new(nrows - 1, col));
            let meter = &self.meter;
            self.grid.for_each_in_range(range, &mut |addr, cell| {
                builder.add(meter, addr.row, cell.display_value(), cell.is_formula());
            });
        }
        match builder.finish() {
            Ok(ix) => self.indexes.install(col, ix),
            Err(()) => self.indexes.drop_col(col),
        }
    }

    /// Registration snapshot for structural rebuilds (see
    /// `ops::structure`).
    pub(crate) fn index_snapshot(&self) -> Vec<(u32, bool)> {
        self.indexes.snapshot()
    }

    /// Restores a (remapped) registration snapshot; all live indexes
    /// re-enter as pending and rebuild at the next `ensure_indexes`.
    pub(crate) fn restore_index_snapshot(&mut self, snapshot: Vec<(u32, bool)>) {
        self.indexes.restore(snapshot);
    }

    // --- mutation --------------------------------------------------------

    /// Writes a literal value, unregistering any formula that was there.
    pub fn set_value(&mut self, addr: CellAddr, v: impl Into<Value>) {
        self.meter.tick(Primitive::CellWrite);
        if self.deps.contains(addr) {
            self.deps.remove(addr);
            // A formula was overwritten: only this address's template
            // binding is stale. Value edits into value cells skip even
            // that (the BCT incremental workloads stay fully warm).
            self.programs.invalidate_addr(addr);
        }
        let v = v.into();
        if self.indexes.has_built(addr.col) {
            // Maintain the column index incrementally: capture the old
            // value before the write (a built column never holds a
            // formula, so the displayed value is the literal content).
            let old = self.grid.value_at(addr);
            self.indexes.on_write(&self.meter, addr, &old, &v);
        }
        // Style-preserving typed write; beyond-limit addresses are a
        // programmer error on this infallible path (user input funnels
        // through `set_input`, which pre-validates).
        self.grid.set_value(addr, v).expect("set_value: address beyond engine limits");
    }

    /// Installs a parsed formula (uncomputed until a recalculation runs).
    pub fn set_formula(&mut self, addr: CellAddr, expr: Expr) {
        self.meter.tick(Primitive::CellWrite);
        self.deps.add(addr, &expr);
        self.grid
            .set(addr, Cell::formula(expr))
            .expect("set_formula: address beyond engine limits");
        // The new formula may normalize to a different template; every
        // other cell's memo entry is untouched, so a fill-down edit
        // recompiles at most the one new template.
        self.programs.invalidate_addr(addr);
        // A formula's displayed value changes during recalc without
        // passing through `set_value`, so its column can never be
        // indexed again (deterministic degradation to the scan path).
        self.indexes.drop_col(addr.col);
    }

    /// Parses and installs `src` (with or without a leading `=`),
    /// resolving any defined named ranges.
    pub fn set_formula_str(&mut self, addr: CellAddr, src: &str) -> Result<(), EngineError> {
        check_addr(addr)?;
        let body = src.strip_prefix('=').unwrap_or(src);
        let expr = crate::formula::parse_with(body, &self.names)?;
        self.set_formula(addr, expr);
        Ok(())
    }

    // --- named ranges ------------------------------------------------------

    /// Defines (or redefines) a named range. Names are case-insensitive,
    /// must start with a letter or `_`, and must not collide with a cell
    /// reference (`Q1` is a cell, not a valid name) — the constraints of
    /// the real systems' name managers.
    pub fn define_name(&mut self, name: &str, range: Range) -> Result<(), EngineError> {
        let valid = !name.is_empty()
            && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            && CellRef::parse(name).is_err();
        if !valid {
            return Err(EngineError::Invalid(format!("invalid range name {name:?}")));
        }
        self.names.0.insert(name.to_ascii_uppercase(), range);
        Ok(())
    }

    /// Looks up a named range.
    pub fn name_range(&self, name: &str) -> Option<Range> {
        self.names.0.get(&name.to_ascii_uppercase()).copied()
    }

    /// Removes a named range; `true` when it existed.
    pub fn remove_name(&mut self, name: &str) -> bool {
        self.names.0.remove(&name.to_ascii_uppercase()).is_some()
    }

    /// Defined names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.names.0.keys().map(String::as_str).collect();
        out.sort_unstable();
        out
    }

    /// Sets a cell from user input: `=...` becomes a formula, numeric text
    /// a number, `TRUE`/`FALSE` booleans, everything else text.
    pub fn set_input(&mut self, addr: CellAddr, input: &str) -> Result<(), EngineError> {
        // Parsed addresses can name rows past the engine's hard limits
        // (e.g. `A1073741825`); reject them here with a typed error so the
        // infallible internal setters below can't be reached with one.
        check_addr(addr)?;
        if let Some(body) = input.strip_prefix('=') {
            return self.set_formula_str(addr, body);
        }
        let v = if let Some(n) = crate::value::parse_number(input) {
            Value::Number(n)
        } else {
            match input.trim().to_ascii_uppercase().as_str() {
                "TRUE" => Value::Bool(true),
                "FALSE" => Value::Bool(false),
                _ => Value::text(input),
            }
        };
        self.set_value(addr, v);
        Ok(())
    }

    /// Pre-sizes the grid. Sizes beyond the engine's hard limits
    /// (`grid::MAX_ROWS` × `grid::MAX_COLS`) are a programmer error.
    pub fn ensure_size(&mut self, rows: u32, cols: u32) {
        self.grid.ensure_size(rows, cols).expect("ensure_size: beyond engine limits");
    }

    /// Stores an evaluated result into a formula cell's cache. Exposed so
    /// alternative evaluation strategies (the optimized engine's shared
    /// and incremental computation) can materialize results; a no-op on
    /// non-formula cells.
    pub fn store_formula_result(&mut self, addr: CellAddr, v: Value) {
        // The formula check first keeps the no-op path allocation-free
        // (cell_mut would materialize general storage for the slot).
        if !self.is_formula(addr) {
            return;
        }
        let cell = self.grid.cell_mut(addr).expect("formula cell is within the grid");
        if let CellContent::Formula(f) = &mut cell.content {
            f.cached = v;
        }
    }

    /// Internal alias used by the recalculation engine.
    pub(crate) fn store_cached(&mut self, addr: CellAddr, v: Value) {
        self.store_formula_result(addr, v);
    }

    /// Mutable cell access for operations (styles, pastes); callers are
    /// responsible for keeping the dependency graph consistent when they
    /// change formula content.
    pub(crate) fn cell_mut(&mut self, addr: CellAddr) -> &mut Cell {
        self.grid.cell_mut(addr).expect("cell_mut: address beyond engine limits")
    }

    /// Mutable dependency-graph access for operations.
    #[allow(dead_code)] // reserved for structural operations
    pub(crate) fn deps_mut(&mut self) -> &mut DepGraph {
        &mut self.deps
    }

    /// Replaces every formula by its cached value (derives the Value-only
    /// dataset of §3.2).
    pub fn freeze_all_formulas(&mut self) {
        let addrs: Vec<CellAddr> = self.deps.formula_addrs().collect();
        for addr in addrs {
            self.grid.cell_mut(addr).expect("formula cell is within the grid").freeze();
        }
        self.deps.clear();
    }

    /// Reorders rows (new row `i` = old row `perm[i]`), keeping filter
    /// state aligned and re-registering moved formulae.
    ///
    /// As in the real systems, a moved formula's *relative* references are
    /// rewritten by the row delta (the formula keeps pointing at its own
    /// row's cells), while *absolute* references stay pinned — exactly the
    /// distinction behind §6's "detecting what needs recomputation":
    /// relative same-row formulae keep their value under any row sort;
    /// absolute ones may not.
    pub fn permute_rows(&mut self, perm: &[u32]) -> Result<(), EngineError> {
        self.grid.permute_rows(perm)?;
        if !self.hidden.is_empty() {
            let mut hidden = vec![false; perm.len()];
            for (i, &p) in perm.iter().enumerate() {
                hidden[i] = self.hidden.get(p as usize).copied().unwrap_or(false);
            }
            self.hidden = hidden;
        }
        // Rewrite relative references of every moved formula, probing the
        // program memo as we go: a binding survives the permutation when
        // every window of its program's static read-set resolves at the
        // destination address — then `normalize(adjusted(e, old, new),
        // new) == normalize(e, old)`, the R1C1 key is unchanged, and the
        // compiled program (a pure function of that key) is still the
        // right one. Unmoved formulas pass trivially: windows anchored at
        // an address always resolve there. Pure-typed columns can't hold
        // formulas, so the scan skips them wholesale.
        let formula_cols: Vec<u32> =
            (0..self.ncols()).filter(|&c| self.grid.col_may_have_formulas(c)).collect();
        let mut retained: Vec<(CellAddr, std::sync::Arc<crate::compile::Program>)> = Vec::new();
        for (new_row, &old_row) in perm.iter().enumerate() {
            let new_row = new_row as u32;
            for &col in &formula_cols {
                let addr = CellAddr::new(new_row, col);
                if !self.is_formula(addr) {
                    continue;
                }
                if let Some(prog) = self.programs.memo_get(CellAddr::new(old_row, col)) {
                    if windows_resolve_at(prog.reads(), addr) {
                        retained.push((addr, prog));
                    }
                }
                if new_row == old_row {
                    continue;
                }
                let adjusted =
                    self.formula_expr(addr).map(|e| e.adjusted(CellAddr::new(old_row, col), addr));
                if let Some(expr) = adjusted {
                    if let CellContent::Formula(f) = &mut self.cell_mut(addr).content {
                        f.expr = expr;
                    }
                }
            }
        }
        self.rebuild_deps_retaining(retained);
        Ok(())
    }

    /// Rebuilds the dependency graph by scanning the grid (used after bulk
    /// structural changes). Conservative: drops every per-address memo
    /// entry (see [`rebuild_deps_retaining`](Sheet::rebuild_deps_retaining)
    /// for the retention-aware variant structural ops use).
    pub fn rebuild_deps(&mut self) {
        self.rebuild_deps_retaining(Vec::new());
    }

    /// [`rebuild_deps`](Sheet::rebuild_deps) plus re-installation of memo
    /// bindings the caller proved survive the restructure (their programs'
    /// read windows resolve unchanged at the retained addresses).
    pub(crate) fn rebuild_deps_retaining(
        &mut self,
        retained: Vec<(CellAddr, std::sync::Arc<crate::compile::Program>)>,
    ) {
        self.deps.clear();
        // Addresses were reshuffled wholesale, so the memo is void except
        // for the proven bindings — and pure templates are still valid for
        // whatever cell instantiates them next. Column indexes demote to
        // pending for the same reason: row postings no longer match the
        // grid, and the next `ensure_indexes` rebuilds them.
        self.indexes.invalidate_built();
        self.programs.retain_pure_with(retained);
        let Some(range) = self.used_range() else { return };
        let mut formulas: Vec<(CellAddr, Expr)> = Vec::new();
        self.grid.for_each_in_range(range, &mut |addr, cell| {
            if let CellContent::Formula(f) = &cell.content {
                formulas.push((addr, f.expr.clone()));
            }
        });
        for (addr, expr) in formulas {
            self.deps.add(addr, &expr);
        }
    }

    // --- filter state ----------------------------------------------------

    /// Hides or unhides a row.
    pub fn set_row_hidden(&mut self, row: u32, hidden: bool) {
        if self.hidden.len() <= row as usize {
            // usize arithmetic: `row + 1` in u32 would wrap at u32::MAX.
            self.hidden.resize((self.nrows() as usize).max(row as usize + 1), false);
        }
        self.hidden[row as usize] = hidden;
    }

    /// Whether a row is hidden.
    pub fn is_row_hidden(&self, row: u32) -> bool {
        self.hidden.get(row as usize).copied().unwrap_or(false)
    }

    /// Unhides every row.
    pub fn unhide_all_rows(&mut self) {
        self.hidden.clear();
    }

    /// Number of visible (unhidden) rows.
    pub fn visible_rows(&self) -> u32 {
        let hidden = self.hidden.iter().filter(|&&h| h).count() as u32;
        self.nrows() - hidden.min(self.nrows())
    }

    // --- evaluation plumbing ----------------------------------------------

    /// An evaluation context for the formula at `current`.
    pub fn eval_ctx(&self, current: CellAddr) -> EvalCtx<'_> {
        self.eval_ctx_with(current, &self.meter)
    }

    /// An evaluation context charging an explicit meter instead of the
    /// sheet's own — the parallel recalc path hands each worker thread a
    /// private meter here so the sheet's counter stays single-writer.
    pub fn eval_ctx_with<'a>(&'a self, current: CellAddr, meter: &'a Meter) -> EvalCtx<'a> {
        EvalCtx {
            cells: self,
            meter,
            current,
            lookup: self.lookup,
            now_serial: self.now_serial,
            indexes: Some(&self.indexes),
        }
    }

    /// Evaluates an expression against this sheet without installing it
    /// (one-shot queries, used heavily by the benchmark harness).
    pub fn eval_expr(&self, expr: &Expr) -> Value {
        let ctx = self.eval_ctx(CellAddr::new(0, 0));
        crate::eval::evaluate(expr, &ctx)
    }

    /// Parses and evaluates a one-shot formula (named ranges resolve).
    pub fn eval_str(&self, src: &str) -> Result<Value, EngineError> {
        let body = src.strip_prefix('=').unwrap_or(src);
        Ok(self.eval_expr(&crate::formula::parse_with(body, &self.names)?))
    }
}

impl Default for Sheet {
    fn default() -> Self {
        Sheet::new()
    }
}

/// Rejects addresses at or beyond the engine's hard limits before they
/// reach the infallible internal setters.
fn check_addr(addr: CellAddr) -> Result<(), EngineError> {
    if addr.row >= crate::grid::MAX_ROWS || addr.col >= crate::grid::MAX_COLS {
        return Err(EngineError::OutOfBounds { rows: addr.row, cols: addr.col });
    }
    Ok(())
}

/// The memo-retention predicate: every window of a bounded read-set
/// resolves at `at`. Read windows are derived one-per-reference, so
/// resolution of every window corner is exactly the condition under which
/// a moved formula's adjusted expression keeps its R1C1 normalization —
/// and with it its compiled program. `Unbounded` proves nothing and never
/// retains.
pub(crate) fn windows_resolve_at(reads: &crate::analyze::ReadSet, at: CellAddr) -> bool {
    match reads.windows() {
        Some(ws) => {
            ws.iter().all(|w| w.start.resolve(at).is_some() && w.end.resolve(at).is_some())
        }
        None => false,
    }
}

impl CellSource for Sheet {
    fn value_at(&self, addr: CellAddr) -> Value {
        self.value(addr)
    }

    fn is_formula_at(&self, addr: CellAddr) -> bool {
        self.is_formula(addr)
    }

    fn bounds(&self) -> (u32, u32) {
        (self.nrows(), self.ncols())
    }

    fn visit_range(&self, range: Range, f: &mut dyn FnMut(CellAddr, &Value, bool)) {
        // Single-column windows — the dominant aggregation shape — take
        // the typed scan path: numeric chunks hand over `f64` runs and no
        // temporary `Cell` is materialized per position. The visit order
        // is identical to `for_each_in_range` (one column admits only
        // one order), as are the values and formula flags fed to `f`.
        if range.start.col == range.end.col {
            use crate::grid::ScanSlice;
            let c = range.start.col;
            let mut r = range.start.row;
            self.grid.scan_range(range, &mut |slice: ScanSlice<'_>| match slice {
                ScanSlice::Nums(vals) => {
                    for &n in vals {
                        f(CellAddr::new(r, c), &Value::Number(n), false);
                        r += 1;
                    }
                }
                ScanSlice::Texts(ids, interner) => {
                    for &id in ids {
                        f(CellAddr::new(r, c), interner.value(id), false);
                        r += 1;
                    }
                }
                ScanSlice::Cells(cells) => {
                    for cell in cells {
                        f(CellAddr::new(r, c), cell.display_value(), cell.is_formula());
                        r += 1;
                    }
                }
                ScanSlice::Empty(n) => {
                    for _ in 0..n {
                        f(CellAddr::new(r, c), &Value::Empty, false);
                        r += 1;
                    }
                }
            });
            return;
        }
        self.grid.for_each_in_range(range, &mut |addr, cell| {
            f(addr, cell.display_value(), cell.is_formula());
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recalc;

    fn a(s: &str) -> CellAddr {
        CellAddr::parse(s).unwrap()
    }

    #[test]
    fn set_and_read_values() {
        let mut s = Sheet::new();
        s.set_value(a("B2"), 42);
        assert_eq!(s.value(a("B2")), Value::Number(42.0));
        assert_eq!(s.value(a("Z9")), Value::Empty);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.ncols(), 2);
    }

    #[test]
    fn set_input_detects_types() {
        let mut s = Sheet::new();
        s.set_input(a("A1"), " 3.5 ").unwrap();
        s.set_input(a("A2"), "true").unwrap();
        s.set_input(a("A3"), "storm").unwrap();
        s.set_input(a("A4"), "=1+1").unwrap();
        assert_eq!(s.value(a("A1")), Value::Number(3.5));
        assert_eq!(s.value(a("A2")), Value::Bool(true));
        assert_eq!(s.value(a("A3")), Value::text("storm"));
        assert!(s.is_formula(a("A4")));
    }

    #[test]
    fn set_input_treats_non_finite_spellings_as_text() {
        // `parse::<f64>()` accepts these; cell input must not: a grid cell
        // may never hold NaN or ±inf (the real systems store them as text).
        let mut s = Sheet::new();
        for (i, input) in ["inf", "NaN", "infinity", "-inf", "1e999"].iter().enumerate() {
            let addr = CellAddr::new(i as u32, 0);
            s.set_input(addr, input).unwrap();
            assert_eq!(s.value(addr), Value::text(*input), "{input:?} must stay text");
        }
    }

    #[test]
    fn layout_accessor_reports_storage() {
        assert_eq!(Sheet::new().layout(), Layout::RowMajor);
        assert_eq!(Sheet::with_layout(Layout::ColumnMajor, 2, 2).layout(), Layout::ColumnMajor);
    }

    #[test]
    fn formula_lifecycle_and_deps() {
        let mut s = Sheet::new();
        s.set_value(a("A1"), 1);
        s.set_formula_str(a("B1"), "=A1+1").unwrap();
        assert_eq!(s.formula_count(), 1);
        // Overwriting with a value unregisters the formula.
        s.set_value(a("B1"), 9);
        assert_eq!(s.formula_count(), 0);
    }

    #[test]
    fn eval_str_one_shot() {
        let mut s = Sheet::new();
        for i in 0..10u32 {
            s.set_value(CellAddr::new(i, 0), i + 1);
        }
        assert_eq!(s.eval_str("=SUM(A1:A10)").unwrap(), Value::Number(55.0));
        assert_eq!(s.eval_str("COUNTIF(A1:A10,\">5\")").unwrap(), Value::Number(5.0));
    }

    #[test]
    fn freeze_all_converts() {
        let mut s = Sheet::new();
        s.set_value(a("A1"), 2);
        s.set_formula_str(a("B1"), "=A1*10").unwrap();
        recalc::recalc_all(&mut s);
        assert_eq!(s.value(a("B1")), Value::Number(20.0));
        s.freeze_all_formulas();
        assert!(!s.is_formula(a("B1")));
        assert_eq!(s.value(a("B1")), Value::Number(20.0));
        assert_eq!(s.formula_count(), 0);
    }

    #[test]
    fn permute_rows_moves_formulas_and_rebuilds_deps() {
        let mut s = Sheet::new();
        s.set_value(a("A1"), 10);
        s.set_value(a("A2"), 20);
        s.set_formula_str(a("B2"), "=A2*2").unwrap();
        recalc::recalc_all(&mut s);
        s.permute_rows(&[1, 0]).unwrap();
        // The formula moved to B1 with its relative reference rewritten to
        // its new row (real-system sort semantics): =A1*2 over A1=20.
        assert!(s.is_formula(a("B1")));
        assert!(!s.is_formula(a("B2")));
        assert_eq!(s.input_text(a("B1")), "=A1*2");
        recalc::recalc_all(&mut s);
        assert_eq!(s.value(a("B1")), Value::Number(40.0));
        // Its value is unchanged by the sort — §6's relative-reference
        // invariance.
    }

    #[test]
    fn permute_retains_memo_for_window_stable_templates() {
        use crate::compile::EvalBackend;
        use crate::recalc::RecalcOptions;

        let mut s = Sheet::new();
        s.set_recalc_options(RecalcOptions {
            backend: EvalBackend::Compiled,
            ..RecalcOptions::sequential()
        });
        for r in 0..8u32 {
            s.set_value(CellAddr::new(r, 0), i64::from(r + 1));
            s.set_formula_str(CellAddr::new(r, 1), &format!("=A{}*2", r + 1)).unwrap();
        }
        recalc::recalc_all(&mut s);
        assert_eq!(s.program_cache().memo_len(), 8);
        let misses = s.program_cache().misses();
        // Reverse the rows: every formula's same-row window resolves at
        // its destination, so every memo binding rides the sort.
        let perm: Vec<u32> = (0..8).rev().collect();
        s.permute_rows(&perm).unwrap();
        assert_eq!(s.program_cache().memo_len(), 8, "same-row templates survive a sort");
        recalc::recalc_all(&mut s);
        assert_eq!(s.program_cache().misses(), misses, "a sort must not recompile");
        for r in 0..8u32 {
            assert_eq!(
                s.value(CellAddr::new(r, 1)),
                Value::Number(f64::from((8 - r) * 2)),
                "row {r}"
            );
        }
    }

    #[test]
    fn permute_drops_memo_when_windows_break() {
        use crate::compile::EvalBackend;
        use crate::recalc::RecalcOptions;

        let mut s = Sheet::new();
        s.set_recalc_options(RecalcOptions {
            backend: EvalBackend::Compiled,
            ..RecalcOptions::sequential()
        });
        s.set_value(a("A1"), 1);
        s.set_value(a("A2"), 2);
        s.set_value(a("A3"), 3);
        // Both reference the *previous* row.
        s.set_formula_str(a("B2"), "=A1*2").unwrap();
        s.set_formula_str(a("B3"), "=A2*2").unwrap();
        recalc::recalc_all(&mut s);
        assert_eq!(s.program_cache().memo_len(), 2);
        // Old row 2 (B2) moves to the top: its previous-row window walks
        // off the sheet, so that binding must drop; unmoved B3 survives.
        s.permute_rows(&[1, 0, 2]).unwrap();
        assert_eq!(s.program_cache().memo_len(), 1);
        recalc::recalc_all(&mut s);
        assert_eq!(s.value(a("B1")), Value::Error(crate::error::CellError::Ref));
        // B3 still reads the row above it, which now holds old A1's 1.
        assert_eq!(s.value(a("B3")), Value::Number(2.0));
    }

    #[test]
    fn hidden_rows_tracking() {
        let mut s = Sheet::new();
        for i in 0..5u32 {
            s.set_value(CellAddr::new(i, 0), i);
        }
        s.set_row_hidden(1, true);
        s.set_row_hidden(3, true);
        assert!(s.is_row_hidden(1));
        assert!(!s.is_row_hidden(0));
        assert_eq!(s.visible_rows(), 3);
        s.unhide_all_rows();
        assert_eq!(s.visible_rows(), 5);
    }

    #[test]
    fn used_range() {
        let s = Sheet::new();
        assert!(s.used_range().is_none());
        let mut s = Sheet::new();
        s.set_value(a("C3"), 1);
        assert_eq!(s.used_range().unwrap(), Range::parse("A1:C3").unwrap());
    }

    #[test]
    fn column_major_layout_behaves_identically() {
        let mut s = Sheet::with_layout(Layout::ColumnMajor, 0, 0);
        s.set_value(a("A1"), 5);
        s.set_formula_str(a("B1"), "=A1*3").unwrap();
        recalc::recalc_all(&mut s);
        assert_eq!(s.value(a("B1")), Value::Number(15.0));
    }
}

#[cfg(test)]
mod name_tests {
    use super::*;
    use crate::recalc;

    fn a(s: &str) -> CellAddr {
        CellAddr::parse(s).unwrap()
    }

    #[test]
    fn named_ranges_resolve_in_formulas() {
        let mut s = Sheet::new();
        for i in 0..10u32 {
            s.set_value(CellAddr::new(i, 0), i64::from(i + 1));
        }
        s.define_name("Scores", Range::parse("A1:A10").unwrap()).unwrap();
        s.set_formula_str(a("C1"), "=SUM(Scores)").unwrap();
        recalc::recalc_all(&mut s);
        assert_eq!(s.value(a("C1")), Value::Number(55.0));
        // Names are case-insensitive and survive eval_str too.
        assert_eq!(s.eval_str("=COUNTIF(scores,\">5\")").unwrap(), Value::Number(5.0));
        assert_eq!(s.name_range("SCORES"), Some(Range::parse("A1:A10").unwrap()));
    }

    #[test]
    fn single_cell_name_acts_as_scalar() {
        let mut s = Sheet::new();
        s.set_value(a("B2"), 21);
        // Redefinition is allowed and replaces the previous binding.
        s.define_name("Rate", Range::parse("B1").unwrap()).unwrap();
        s.define_name("Rate", Range::parse("B2").unwrap()).unwrap();
        assert_eq!(s.eval_str("=Rate*2").unwrap(), Value::Number(42.0));
    }

    #[test]
    fn invalid_names_rejected() {
        let mut s = Sheet::new();
        let r = Range::parse("A1:A3").unwrap();
        assert!(s.define_name("Q1", r).is_err(), "collides with a cell ref");
        assert!(s.define_name("", r).is_err());
        assert!(s.define_name("1up", r).is_err());
        assert!(s.define_name("has space", r).is_err());
        assert!(s.define_name("_ok.name2", r).is_ok());
    }

    #[test]
    fn unknown_names_still_error() {
        let mut s = Sheet::new();
        assert!(s.set_formula_str(a("A1"), "=SUM(NoSuchName)").is_err());
    }

    #[test]
    fn remove_and_list_names() {
        let mut s = Sheet::new();
        let r = Range::parse("A1:A3").unwrap();
        s.define_name("beta", r).unwrap();
        s.define_name("alpha", r).unwrap();
        assert_eq!(s.names(), ["ALPHA", "BETA"]);
        assert!(s.remove_name("Beta"));
        assert!(!s.remove_name("Beta"));
        assert_eq!(s.names(), ["ALPHA"]);
    }

    #[test]
    fn named_ranges_are_absolute_for_copy_paste() {
        let mut s = Sheet::new();
        for i in 0..5u32 {
            s.set_value(CellAddr::new(i, 0), i64::from(i + 1));
        }
        s.define_name("Data", Range::parse("A1:A5").unwrap()).unwrap();
        s.set_formula_str(a("C1"), "=SUM(Data)").unwrap();
        // Copying the formula keeps the named range pinned.
        s.apply(crate::ops::Op::CopyPaste { src: Range::parse("C1").unwrap(), dst: a("D7") })
            .unwrap();
        recalc::recalc_all(&mut s);
        assert_eq!(s.value(a("D7")), Value::Number(15.0));
    }
}
