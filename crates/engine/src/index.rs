//! Maintained column indexes: the database-style optimization the paper
//! finds missing from all three benchmarked systems (§OOT, Figs 9–14).
//!
//! An [`IndexStore`] lives on the `Sheet` and holds, per registered column,
//! a hash index (value key → sorted row postings) plus a sorted array of
//! the column's numbers. `COUNTIF`/`SUMIF`/`AVERAGEIF`/`VLOOKUP`/`MATCH`
//! evaluation consults the store through [`crate::eval::EvalCtx::indexes`]
//! and answers eligible queries with O(1)/O(log m) probes instead of the
//! O(m) scans the real systems perform. Every probe charges
//! [`Primitive::IndexProbe`] so the cost model prices indexed evaluation
//! honestly; values are bit-identical to the scan path (proven by the §9
//! oracle's `indexed` dimension and the equivalence tests).
//!
//! # Soundness invariants
//!
//! * **No formulas.** An indexed column contains only literal cells: a
//!   formula's displayed value changes during recalculation without
//!   passing through `Sheet::set_value`, so a column index over formulas
//!   could go stale invisibly. `build` refuses columns containing a
//!   formula and `set_formula` drops a column's index permanently.
//! * **Single write channel.** Every literal-content mutation in the
//!   engine funnels through `Sheet::set_value`/`set_formula` (operations
//!   use `cell_mut` only for styles), so `on_write` sees every edit of an
//!   indexed column with the old value still in hand.
//! * **Structural edits invalidate.** `rebuild_deps_retaining` (sort,
//!   insert/delete rows/cols) demotes every built index to pending; the
//!   next `ensure_indexes` rebuilds from the grid. A pending or dropped
//!   column simply falls back to the scan path, so correctness never
//!   depends on a rebuild having happened.
//!
//! # Eligibility
//!
//! Probes answer only what the index can answer with the scan path's
//! exact semantics (`sheet_eq` / `sheet_cmp` / `Criterion::matches`):
//!
//! * Equality keys must be `Number` or `Text` without COUNTIF wildcards —
//!   text keys are normalized with `to_ascii_lowercase`, the same
//!   equivalence as `sheet_eq`'s `eq_ignore_ascii_case`; `-0.0`
//!   normalizes to `0.0` because `sheet_eq` uses IEEE `==`.
//! * Ordered criteria (`<`, `<=`, `>`, `>=`) use the sorted array, which
//!   has no row structure, so they require the range to cover the whole
//!   materialized column.
//! * Everything else (wildcards, booleans, errors, multi-column ranges,
//!   approximate lookups) returns `None` and the caller scans.

use std::collections::HashMap;

use crate::addr::{CellAddr, Range};
use crate::eval::EvalCtx;
use crate::meter::{Meter, Primitive};
use crate::value::{Criterion, Value};

/// A hash key for a cell value, defined exactly on the values `sheet_eq`
/// can equate structurally: numbers (bitwise, with `-0.0` folded into
/// `0.0`) and ASCII-case-folded text.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum IndexKey {
    Num(u64),
    Text(String),
}

impl IndexKey {
    fn of(v: &Value) -> Option<IndexKey> {
        match v {
            Value::Number(n) => {
                // sheet_eq uses IEEE ==, under which -0.0 == 0.0.
                let n = if *n == 0.0 { 0.0 } else { *n };
                Some(IndexKey::Num(n.to_bits()))
            }
            Value::Text(s) => Some(IndexKey::Text(s.to_ascii_lowercase())),
            _ => None,
        }
    }
}

/// The per-column structure: hash postings and a sorted numeric array.
#[derive(Debug, Default)]
pub struct ColumnIndex {
    /// Value key → rows holding it, ascending.
    hash: HashMap<IndexKey, Vec<u32>>,
    /// Every `Number` in the column, sorted ascending (`total_cmp`, which
    /// refines the IEEE order the ordered criteria compare with).
    sorted_nums: Vec<f64>,
    /// Number of indexed (non-empty, non-bool, non-error) cells.
    entries: usize,
}

impl ColumnIndex {
    /// Adds one cell during a bulk build; `finish` must be called before
    /// the index is probed. Rows must arrive in ascending order (they do:
    /// builds walk the column top to bottom).
    fn push_build(&mut self, row: u32, v: &Value) {
        if let Some(key) = IndexKey::of(v) {
            self.hash.entry(key).or_default().push(row);
            self.entries += 1;
        }
        if let Value::Number(n) = v {
            self.sorted_nums.push(*n);
        }
    }

    /// Finalizes a bulk build.
    fn finish(&mut self) {
        self.sorted_nums.sort_unstable_by(f64::total_cmp);
    }

    /// Incremental insert (single-cell edit path).
    fn insert(&mut self, row: u32, v: &Value) {
        if let Some(key) = IndexKey::of(v) {
            let rows = self.hash.entry(key).or_default();
            let i = rows.partition_point(|&r| r < row);
            rows.insert(i, row);
            self.entries += 1;
        }
        if let Value::Number(n) = v {
            let i = self.sorted_nums.partition_point(|&x| x.total_cmp(n).is_lt());
            self.sorted_nums.insert(i, *n);
        }
    }

    /// Incremental remove; `v` must be the value previously indexed at
    /// `row` (the caller reads it from the grid before overwriting).
    fn remove(&mut self, row: u32, v: &Value) {
        if let Some(key) = IndexKey::of(v) {
            if let Some(rows) = self.hash.get_mut(&key) {
                let i = rows.partition_point(|&r| r < row);
                if rows.get(i) == Some(&row) {
                    rows.remove(i);
                    self.entries -= 1;
                }
                if rows.is_empty() {
                    self.hash.remove(&key);
                }
            }
        }
        if let Value::Number(n) = v {
            let i = self.sorted_nums.partition_point(|&x| x.total_cmp(n).is_lt());
            if self.sorted_nums.get(i) == Some(n) {
                self.sorted_nums.remove(i);
            }
        }
    }

    /// Number of indexed cells (tests and reports).
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no cell is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Rows in `[lo, hi]` whose value equals `key`; the slice is ascending.
    /// One probe for the bucket, one per partition point.
    fn eq_rows_in(&self, meter: &Meter, key: &IndexKey, lo: u32, hi: u32) -> &[u32] {
        meter.tick(Primitive::IndexProbe);
        let rows = self.hash.get(key).map(Vec::as_slice).unwrap_or(&[]);
        meter.tick(Primitive::IndexProbe);
        let a = rows.partition_point(|&r| r < lo);
        meter.tick(Primitive::IndexProbe);
        let b = rows.partition_point(|&r| r <= hi);
        &rows[a..b]
    }

    /// Count of numbers satisfying an ordered criterion, over the whole
    /// column. One probe per partition point.
    fn count_ordered(&self, meter: &Meter, criterion: &Criterion) -> Option<u64> {
        let n = self.sorted_nums.len();
        meter.tick(Primitive::IndexProbe);
        let count = match *criterion {
            Criterion::Lt(k) => self.sorted_nums.partition_point(|&x| x < k),
            Criterion::Le(k) => self.sorted_nums.partition_point(|&x| x <= k),
            Criterion::Gt(k) => n - self.sorted_nums.partition_point(|&x| x <= k),
            Criterion::Ge(k) => n - self.sorted_nums.partition_point(|&x| x < k),
            _ => return None,
        };
        Some(count as u64)
    }
}

/// Lifecycle of one registered column.
#[derive(Debug)]
enum ColState {
    /// Registered but not (re)built yet; probes fall back to scans.
    Pending,
    /// Live index, maintained through every `set_value`.
    Built(ColumnIndex),
    /// Permanently excluded: a formula lives (or lived) in the column.
    Dropped,
}

/// The sheet's column-index registry.
#[derive(Debug, Default)]
pub struct IndexStore {
    cols: HashMap<u32, ColState>,
}

impl IndexStore {
    /// Registers a column for indexing; no-op if already registered or
    /// dropped. The index is built by the next `Sheet::ensure_indexes`.
    pub(crate) fn register(&mut self, col: u32) {
        self.cols.entry(col).or_insert(ColState::Pending);
    }

    /// Permanently excludes a column (a formula was written into it).
    pub(crate) fn drop_col(&mut self, col: u32) {
        if self.cols.contains_key(&col) {
            self.cols.insert(col, ColState::Dropped);
        }
    }

    /// Demotes every built index to pending (structural edits reshuffled
    /// rows wholesale; the next `ensure_indexes` rebuilds from the grid).
    pub(crate) fn invalidate_built(&mut self) {
        for state in self.cols.values_mut() {
            if matches!(state, ColState::Built(_)) {
                *state = ColState::Pending;
            }
        }
    }

    /// Columns awaiting a (re)build, ascending.
    pub(crate) fn pending_cols(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .cols
            .iter()
            .filter_map(|(&c, s)| matches!(s, ColState::Pending).then_some(c))
            .collect();
        out.sort_unstable();
        out
    }

    /// Installs a freshly built index.
    pub(crate) fn install(&mut self, col: u32, mut ix: ColumnIndex) {
        ix.finish();
        self.cols.insert(col, ColState::Built(ix));
    }

    /// The live index for `col`, if built.
    pub fn built(&self, col: u32) -> Option<&ColumnIndex> {
        match self.cols.get(&col) {
            Some(ColState::Built(ix)) => Some(ix),
            _ => None,
        }
    }

    /// Whether `col` has a live index (the `set_value` fast-path check).
    pub(crate) fn has_built(&self, col: u32) -> bool {
        matches!(self.cols.get(&col), Some(ColState::Built(_)))
    }

    /// True when nothing is registered at all.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Number of live (built) column indexes.
    pub fn built_count(&self) -> usize {
        self.cols.values().filter(|s| matches!(s, ColState::Built(_))).count()
    }

    /// Maintains a built column through one literal write. Charges one
    /// `IndexProbe` for the O(log m) posting update.
    pub(crate) fn on_write(&mut self, meter: &Meter, addr: CellAddr, old: &Value, new: &Value) {
        if let Some(ColState::Built(ix)) = self.cols.get_mut(&addr.col) {
            meter.tick(Primitive::IndexProbe);
            ix.remove(addr.row, old);
            ix.insert(addr.row, new);
        }
    }

    /// Registration snapshot `(col, dropped)` for carrying registrations
    /// across a structural rebuild (`ops::structure` swaps in a fresh
    /// sheet and remaps columns).
    pub(crate) fn snapshot(&self) -> Vec<(u32, bool)> {
        let mut out: Vec<(u32, bool)> = self
            .cols
            .iter()
            .map(|(&c, s)| (c, matches!(s, ColState::Dropped)))
            .collect();
        out.sort_unstable();
        out
    }

    /// Restores a (remapped) snapshot: dropped columns stay dropped,
    /// everything else re-enters as pending.
    pub(crate) fn restore(&mut self, snapshot: impl IntoIterator<Item = (u32, bool)>) {
        self.cols.clear();
        for (col, dropped) in snapshot {
            self.cols.insert(col, if dropped { ColState::Dropped } else { ColState::Pending });
        }
    }
}

// ---------------------------------------------------------------------
// Build support (driven by `Sheet::ensure_indexes`).
// ---------------------------------------------------------------------

/// Accumulates one column's cells into a `ColumnIndex`; refuses the column
/// when a formula is present. The meter is charged one `IndexProbe` per
/// indexed cell so rebuilds (e.g. after a sort) are priced as real work.
#[derive(Debug, Default)]
pub(crate) struct ColumnBuilder {
    ix: ColumnIndex,
    has_formula: bool,
}

impl ColumnBuilder {
    pub(crate) fn add(&mut self, meter: &Meter, row: u32, v: &Value, is_formula: bool) {
        if is_formula {
            self.has_formula = true;
        }
        if self.has_formula {
            return;
        }
        if !matches!(v, Value::Number(_) | Value::Text(_)) {
            return;
        }
        meter.tick(Primitive::IndexProbe);
        self.ix.push_build(row, v);
    }

    /// `Ok(index)` when the column is formula-free, `Err(())` otherwise.
    pub(crate) fn finish(self) -> Result<ColumnIndex, ()> {
        if self.has_formula {
            Err(())
        } else {
            Ok(self.ix)
        }
    }
}

// ---------------------------------------------------------------------
// Probe helpers consulted by the evaluators (interpreter and VM).
// ---------------------------------------------------------------------

/// A clipped single-column window `[lo, hi]` of `range`, mirroring the
/// grid's `for_each_in_range`/`clip` semantics exactly: `None` when the
/// range spans columns or starts beyond the materialized extent (where a
/// scan would visit nothing and the caller must keep scan behaviour).
fn col_window(ctx: &EvalCtx<'_>, range: Range) -> Option<(u32, u32, u32)> {
    if range.start.col != range.end.col {
        return None;
    }
    let (nrows, ncols) = ctx.cells.bounds();
    if nrows == 0 || ncols == 0 {
        return None;
    }
    if range.start.row >= nrows || range.start.col >= ncols {
        return None;
    }
    Some((range.start.col, range.start.row, range.end.row.min(nrows - 1)))
}

/// The equality key of a criterion eligible for hash probing: `Eq` over a
/// number or wildcard-free text.
fn eq_key(criterion: &Criterion) -> Option<(&Value, IndexKey)> {
    let Criterion::Eq(target) = criterion else { return None };
    if let Value::Text(pat) = target {
        if pat.contains('*') || pat.contains('?') {
            return None;
        }
    }
    IndexKey::of(target).map(|k| (target, k))
}

/// Indexed `COUNTIF(range, criterion)`. `None` → caller scans.
pub(crate) fn countif_probe(
    ctx: &EvalCtx<'_>,
    range: Range,
    criterion: &Criterion,
) -> Option<f64> {
    let store = ctx.indexes?;
    let (col, lo, hi) = col_window(ctx, range)?;
    let ix = store.built(col)?;
    let count: u64 = match criterion {
        Criterion::Eq(_) => {
            let (_, key) = eq_key(criterion)?;
            ix.eq_rows_in(ctx.meter, &key, lo, hi).len() as u64
        }
        Criterion::Ne(target) => {
            // A scan counts every visited cell not sheet_eq to the target,
            // Empty included: window size minus the equal postings.
            let key = IndexKey::of(target)?;
            let eq = ix.eq_rows_in(ctx.meter, &key, lo, hi).len() as u64;
            u64::from(hi - lo + 1) - eq
        }
        Criterion::Lt(_) | Criterion::Le(_) | Criterion::Gt(_) | Criterion::Ge(_) => {
            // The sorted array has no row structure: whole-column only.
            let (nrows, _) = ctx.cells.bounds();
            if lo != 0 || hi != nrows - 1 {
                return None;
            }
            ix.count_ordered(ctx.meter, criterion)?
        }
    };
    Some(count as f64)
}

/// Indexed `SUMIF`/`AVERAGEIF` fold: `(total, matched_number_count)` with
/// bit-identical accumulation to the scan. `None` → caller scans.
///
/// Without a sum range, an equality match on a number key contributes the
/// key itself per match (all matching cells are IEEE-equal to the key, and
/// a running total can never be `-0.0`, so repeated addition of the key
/// reproduces the scan's folds bit-for-bit); text keys match only text
/// cells, which contribute nothing. With a sum range, the aligned target
/// cells are read through the context in the scan's ascending row order.
pub(crate) fn sumif_probe(
    ctx: &EvalCtx<'_>,
    crit_range: Range,
    sum_range: Option<Range>,
    criterion: &Criterion,
) -> Option<(f64, u64)> {
    let store = ctx.indexes?;
    let (col, lo, hi) = col_window(ctx, crit_range)?;
    let ix = store.built(col)?;
    let (target, key) = eq_key(criterion)?;
    match sum_range {
        None => match target {
            Value::Number(k) => {
                let count = ix.eq_rows_in(ctx.meter, &key, lo, hi).len() as u64;
                let mut total = 0.0;
                for _ in 0..count {
                    total += k;
                }
                Some((total, count))
            }
            _ => {
                // Text keys match only text cells; the scan skips them in
                // the numeric fold but still probes — charge the lookup.
                let _ = ix.eq_rows_in(ctx.meter, &key, lo, hi);
                Some((0.0, 0))
            }
        },
        Some(sr) => {
            let rows: Vec<u32> = ix.eq_rows_in(ctx.meter, &key, lo, hi).to_vec();
            let mut total = 0.0;
            let mut count = 0u64;
            for row in rows {
                let dr = row - crit_range.start.row;
                if let Some(target) = sr.start.offset(i64::from(dr), 0) {
                    if let Value::Number(n) = ctx.read(target) {
                        total += n;
                        count += 1;
                    }
                }
            }
            Some((total, count))
        }
    }
}

/// Indexed exact-match lookup down `col` restricted to the (pre-clipped)
/// `range`: `Some(hit)` when the index answered, `None` → caller scans.
/// The hit, when present, is the first matching absolute row — identical
/// to the scan's first-match-in-row-order result regardless of the
/// early-exit strategy.
pub(crate) fn lookup_probe(
    ctx: &EvalCtx<'_>,
    range: Range,
    col: u32,
    needle: &Value,
) -> Option<Option<u32>> {
    let store = ctx.indexes?;
    let ix = store.built(col)?;
    let key = IndexKey::of(needle)?;
    let rows = ix.eq_rows_in(ctx.meter, &key, range.start.row, range.end.row);
    Some(rows.first().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::ValueMatrix;

    fn built(values: &[Value]) -> ColumnIndex {
        let meter = Meter::new();
        let mut b = ColumnBuilder::default();
        for (row, v) in values.iter().enumerate() {
            b.add(&meter, row as u32, v, false);
        }
        let mut ix = b.finish().expect("no formulas");
        ix.finish();
        ix
    }

    fn nums(ns: &[f64]) -> Vec<Value> {
        ns.iter().map(|&n| Value::Number(n)).collect()
    }

    #[test]
    fn key_folds_negative_zero_and_ascii_case() {
        assert_eq!(IndexKey::of(&Value::Number(-0.0)), IndexKey::of(&Value::Number(0.0)));
        assert_eq!(IndexKey::of(&Value::text("STORM")), IndexKey::of(&Value::text("storm")));
        assert_ne!(IndexKey::of(&Value::Number(1.0)), IndexKey::of(&Value::Number(2.0)));
        assert_eq!(IndexKey::of(&Value::Bool(true)), None);
        assert_eq!(IndexKey::of(&Value::Empty), None);
    }

    #[test]
    fn eq_postings_window() {
        let ix = built(&nums(&[5.0, 3.0, 5.0, 5.0, 1.0]));
        let meter = Meter::new();
        let key = IndexKey::of(&Value::Number(5.0)).unwrap();
        assert_eq!(ix.eq_rows_in(&meter, &key, 0, 4), &[0, 2, 3]);
        assert_eq!(ix.eq_rows_in(&meter, &key, 1, 2), &[2]);
        assert_eq!(ix.eq_rows_in(&meter, &key, 4, 4), &[] as &[u32]);
        assert!(meter.snapshot().get(Primitive::IndexProbe) > 0);
    }

    #[test]
    fn ordered_counts_match_scan_semantics() {
        let vals =
            vec![Value::Number(1.0), Value::text("9"), Value::Number(3.0), Value::Number(3.0)];
        let ix = built(&vals);
        let meter = Meter::new();
        // Text "9" is not a number: ordered criteria skip it, like the scan.
        assert_eq!(ix.count_ordered(&meter, &Criterion::Ge(3.0)), Some(2));
        assert_eq!(ix.count_ordered(&meter, &Criterion::Gt(3.0)), Some(0));
        assert_eq!(ix.count_ordered(&meter, &Criterion::Lt(3.0)), Some(1));
        assert_eq!(ix.count_ordered(&meter, &Criterion::Le(3.0)), Some(3));
        assert_eq!(ix.count_ordered(&meter, &Criterion::Eq(Value::Number(3.0))), None);
    }

    #[test]
    fn incremental_insert_remove_roundtrip() {
        let mut ix = built(&nums(&[2.0, 4.0, 6.0]));
        let meter = Meter::new();
        ix.remove(1, &Value::Number(4.0));
        ix.insert(1, &Value::text("mid"));
        let key = IndexKey::of(&Value::text("MID")).unwrap();
        assert_eq!(ix.eq_rows_in(&meter, &key, 0, 2), &[1]);
        assert_eq!(ix.count_ordered(&meter, &Criterion::Ge(0.0)), Some(2));
        ix.remove(1, &Value::text("mid"));
        ix.insert(1, &Value::Number(4.0));
        assert_eq!(ix.count_ordered(&meter, &Criterion::Ge(0.0)), Some(3));
        assert_eq!(ix.len(), 3);
    }

    #[test]
    fn builder_refuses_formula_columns() {
        let meter = Meter::new();
        let mut b = ColumnBuilder::default();
        b.add(&meter, 0, &Value::Number(1.0), false);
        b.add(&meter, 1, &Value::Number(2.0), true);
        assert!(b.finish().is_err());
    }

    #[test]
    fn store_lifecycle() {
        let mut store = IndexStore::default();
        assert!(store.is_empty());
        store.register(1);
        assert_eq!(store.pending_cols(), vec![1]);
        store.install(1, built(&nums(&[1.0])));
        assert!(store.has_built(1));
        assert_eq!(store.built_count(), 1);
        store.invalidate_built();
        assert!(!store.has_built(1));
        assert_eq!(store.pending_cols(), vec![1]);
        store.drop_col(1);
        assert_eq!(store.pending_cols(), Vec::<u32>::new());
        // A dropped column cannot be re-registered.
        store.register(1);
        assert_eq!(store.pending_cols(), Vec::<u32>::new());
        // Snapshots carry the dropped bit.
        store.register(3);
        let snap = store.snapshot();
        assert_eq!(snap, vec![(1, true), (3, false)]);
        let mut other = IndexStore::default();
        other.restore(snap);
        assert_eq!(other.pending_cols(), vec![3]);
        assert!(matches!(other.cols.get(&1), Some(ColState::Dropped)));
    }

    #[test]
    fn probe_requires_built_single_column_window() {
        let mut m = ValueMatrix::default();
        for r in 0..4u32 {
            m.set(CellAddr::new(r, 0), Value::Number(f64::from(r)));
        }
        let meter = Meter::new();
        let mut store = IndexStore::default();
        store.register(0);
        store.install(0, built(&nums(&[0.0, 1.0, 2.0, 3.0])));
        let mut ctx = EvalCtx::new(&m, &meter, CellAddr::new(0, 1));
        ctx.indexes = Some(&store);
        let r = |s: &str| Range::parse(s).unwrap();
        let eq2 = Criterion::Eq(Value::Number(2.0));
        assert_eq!(countif_probe(&ctx, r("A1:A4"), &eq2), Some(1.0));
        assert_eq!(countif_probe(&ctx, r("A1:A2"), &eq2), Some(0.0));
        // Multi-column and un-indexed columns fall back.
        assert_eq!(countif_probe(&ctx, r("A1:B4"), &eq2), None);
        assert_eq!(countif_probe(&ctx, r("B1:B4"), &eq2), None);
        // Ordered criteria only on whole-column windows.
        assert_eq!(countif_probe(&ctx, r("A1:A4"), &Criterion::Ge(2.0)), Some(2.0));
        assert_eq!(countif_probe(&ctx, r("A2:A4"), &Criterion::Ge(2.0)), None);
        // Ne counts empties via the window size.
        assert_eq!(countif_probe(&ctx, r("A1:A4"), &Criterion::Ne(Value::Number(2.0))), Some(3.0));
        // Without a store the probe declines immediately.
        let bare = EvalCtx::new(&m, &meter, CellAddr::new(0, 1));
        assert_eq!(countif_probe(&bare, r("A1:A4"), &eq2), None);
    }
}
