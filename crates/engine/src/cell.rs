//! The cell model: a cell holds either a plain value or a formula (parsed
//! expression + cached result), plus a style.

use serde::{Deserialize, Serialize};

use crate::formula::{self, Expr};
use crate::style::Style;
use crate::value::Value;

/// A parsed formula living in a cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Formula {
    /// The parsed expression.
    pub expr: Expr,
    /// The cached result of the last evaluation. Spreadsheets always keep
    /// the displayed value materialized; what they do *not* do (per §5.5)
    /// is maintain it incrementally.
    pub cached: Value,
}

impl Formula {
    /// Wraps an expression with an uncomputed (`Empty`) cache.
    pub fn new(expr: Expr) -> Self {
        Formula { expr, cached: Value::Empty }
    }

    /// The canonical source text (with leading `=`).
    pub fn source(&self) -> String {
        format!("={}", formula::print(&self.expr))
    }
}

/// What a cell contains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellContent {
    /// A literal value.
    Value(Value),
    /// A formula (boxed: formulae are the minority of cells and the box
    /// keeps `Cell` small for the 8.5M-cell datasets).
    Formula(Box<Formula>),
}

/// One spreadsheet cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    pub content: CellContent,
    pub style: Style,
}

impl Cell {
    /// An empty, unstyled cell.
    pub fn empty() -> Self {
        Cell { content: CellContent::Value(Value::Empty), style: Style::plain() }
    }

    /// A value cell.
    pub fn value(v: impl Into<Value>) -> Self {
        Cell { content: CellContent::Value(v.into()), style: Style::plain() }
    }

    /// A formula cell (uncomputed).
    pub fn formula(expr: Expr) -> Self {
        Cell { content: CellContent::Formula(Box::new(Formula::new(expr))), style: Style::plain() }
    }

    /// True when the cell holds a formula.
    pub fn is_formula(&self) -> bool {
        matches!(self.content, CellContent::Formula(_))
    }

    /// True when the cell is an empty value cell with no styling.
    pub fn is_vacant(&self) -> bool {
        self.style.is_plain()
            && matches!(&self.content, CellContent::Value(Value::Empty))
    }

    /// The user-visible value: the literal for value cells, the cached
    /// result for formula cells.
    pub fn display_value(&self) -> &Value {
        match &self.content {
            CellContent::Value(v) => v,
            CellContent::Formula(f) => &f.cached,
        }
    }

    /// The text a user would see in the formula bar: `=SUM(A1:A3)` for
    /// formulae, the rendered value otherwise.
    pub fn input_text(&self) -> String {
        match &self.content {
            CellContent::Value(v) => v.display(),
            CellContent::Formula(f) => f.source(),
        }
    }

    /// Replaces a formula cell by its cached value (used to derive the
    /// Value-only dataset from the Formula-value dataset, §3.2: "any
    /// formulae within cells were replaced by the corresponding value").
    pub fn freeze(&mut self) {
        if let CellContent::Formula(f) = &self.content {
            self.content = CellContent::Value(f.cached.clone());
        }
    }
}

impl Default for Cell {
    fn default() -> Self {
        Cell::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::parse;

    #[test]
    fn value_cell_roundtrip() {
        let c = Cell::value(3.5);
        assert!(!c.is_formula());
        assert_eq!(c.display_value(), &Value::Number(3.5));
        assert_eq!(c.input_text(), "3.5");
    }

    #[test]
    fn formula_cell_shows_source() {
        let c = Cell::formula(parse("SUM(A1:A3)").unwrap());
        assert!(c.is_formula());
        assert_eq!(c.input_text(), "=SUM(A1:A3)");
        assert_eq!(c.display_value(), &Value::Empty); // not yet computed
    }

    #[test]
    fn freeze_converts_formula_to_value() {
        let mut c = Cell::formula(parse("1+1").unwrap());
        if let CellContent::Formula(f) = &mut c.content {
            f.cached = Value::Number(2.0);
        }
        c.freeze();
        assert!(!c.is_formula());
        assert_eq!(c.display_value(), &Value::Number(2.0));
        // Freezing a value cell is a no-op.
        c.freeze();
        assert_eq!(c.display_value(), &Value::Number(2.0));
    }

    #[test]
    fn vacancy() {
        assert!(Cell::empty().is_vacant());
        assert!(!Cell::value(0).is_vacant());
        let mut styled = Cell::empty();
        styled.style = styled.style.with_fill(crate::style::Color::GREEN);
        assert!(!styled.is_vacant());
    }
}
