//! The formula dependency graph: which cells each formula reads
//! (precedents) and, inverted, which formulae each cell feeds (dependents).
//!
//! Used for dirty propagation after edits and for ordering recalculation.
//! Range precedents are tracked separately from single-cell precedents so
//! that aggregate formulae over large ranges stay cheap to register.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::addr::{CellAddr, Range};
use crate::formula::Expr;

/// The precedents of one formula.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Precedents {
    pub cells: Vec<CellAddr>,
    pub ranges: Vec<Range>,
}

impl Precedents {
    /// Extracts the precedents of an expression.
    pub fn of(expr: &Expr) -> Self {
        let (cell_refs, range_refs) = expr.refs();
        Precedents {
            cells: cell_refs.iter().map(|r| r.addr).collect(),
            ranges: range_refs.iter().map(|r| r.range()).collect(),
        }
    }

    /// Whether this precedent set covers the read window `w`: a single
    /// cell may be covered by a registered cell or by any registered range
    /// containing it; a multi-cell window needs one registered range
    /// containing it whole (corner containment suffices — ranges are
    /// axis-aligned rectangles). Containment, not equality, is the right
    /// relation for dirty-propagation soundness: any edit inside `w` also
    /// lands inside the covering range, so the watcher still fires. Used
    /// by `analyze::check_sheet`.
    pub fn covers(&self, w: Range) -> bool {
        if w.len() == 1 && self.cells.contains(&w.start) {
            return true;
        }
        self.ranges.iter().any(|r| r.contains(w.start) && r.contains(w.end))
    }
}

/// Ranges spanning more than this many columns are kept on a flat
/// overflow list instead of being fanned out into per-column buckets:
/// whole-row references would otherwise bucket into thousands of columns.
const WIDE_RANGE_COLS: u32 = 16;

/// Column-bucketed index over `(range, watcher)` pairs.
///
/// `dependents_of` is on the hot path of every edit (dirty propagation
/// starts there), so point queries must not scan every range formula on
/// the sheet. Narrow ranges are indexed under each column they cover as
/// `(start_row, end_row, watcher)` row intervals; point lookup touches
/// only the changed cell's column bucket plus the (rare) wide list.
#[derive(Debug, Clone, Default)]
struct RangeIndex {
    by_col: HashMap<u32, Vec<(u32, u32, CellAddr)>>,
    wide: Vec<(Range, CellAddr)>,
}

impl RangeIndex {
    fn insert(&mut self, range: Range, watcher: CellAddr) {
        if range.end.col - range.start.col >= WIDE_RANGE_COLS {
            self.wide.push((range, watcher));
        } else {
            for col in range.start.col..=range.end.col {
                self.by_col
                    .entry(col)
                    .or_default()
                    .push((range.start.row, range.end.row, watcher));
            }
        }
    }

    /// Removes one entry matching `(range, watcher)` — the exact inverse
    /// of one `insert` call, so duplicate registrations stay balanced.
    fn remove(&mut self, range: Range, watcher: CellAddr) {
        if range.end.col - range.start.col >= WIDE_RANGE_COLS {
            if let Some(i) = self.wide.iter().position(|&(r, w)| r == range && w == watcher) {
                self.wide.remove(i);
            }
        } else {
            for col in range.start.col..=range.end.col {
                let Some(bucket) = self.by_col.get_mut(&col) else { continue };
                if let Some(i) = bucket
                    .iter()
                    .position(|&(lo, hi, w)| lo == range.start.row && hi == range.end.row && w == watcher)
                {
                    bucket.remove(i);
                }
                if bucket.is_empty() {
                    self.by_col.remove(&col);
                }
            }
        }
    }

    fn watchers_of(&self, addr: CellAddr, out: &mut Vec<CellAddr>) {
        if let Some(bucket) = self.by_col.get(&addr.col) {
            for &(lo, hi, watcher) in bucket {
                if (lo..=hi).contains(&addr.row) {
                    out.push(watcher);
                }
            }
        }
        for &(range, watcher) in &self.wide {
            if range.contains(addr) {
                out.push(watcher);
            }
        }
    }

    fn clear(&mut self) {
        self.by_col.clear();
        self.wide.clear();
    }
}

/// The dependency graph over formula cells.
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    /// cell → formulae that reference it directly.
    dependents: HashMap<CellAddr, Vec<CellAddr>>,
    /// Range references, indexed by column for point lookup.
    range_watchers: RangeIndex,
    /// formula → its precedents (for removal and ordering).
    precedents: HashMap<CellAddr, Precedents>,
}

impl DepGraph {
    /// An empty graph.
    pub fn new() -> Self {
        DepGraph::default()
    }

    /// Number of registered formulae.
    pub fn len(&self) -> usize {
        self.precedents.len()
    }

    /// True when no formulae are registered.
    pub fn is_empty(&self) -> bool {
        self.precedents.is_empty()
    }

    /// Whether `addr` is a registered formula.
    pub fn contains(&self, addr: CellAddr) -> bool {
        self.precedents.contains_key(&addr)
    }

    /// Iterates registered formula addresses (unordered).
    pub fn formula_addrs(&self) -> impl Iterator<Item = CellAddr> + '_ {
        self.precedents.keys().copied()
    }

    /// The precedents of a registered formula.
    pub fn precedents_of(&self, addr: CellAddr) -> Option<&Precedents> {
        self.precedents.get(&addr)
    }

    /// Registers (or re-registers) the formula at `addr`.
    pub fn add(&mut self, addr: CellAddr, expr: &Expr) {
        self.remove(addr);
        let prec = Precedents::of(expr);
        for &p in &prec.cells {
            self.dependents.entry(p).or_default().push(addr);
        }
        for &r in &prec.ranges {
            self.range_watchers.insert(r, addr);
        }
        self.precedents.insert(addr, prec);
    }

    /// Unregisters the formula at `addr` (no-op when absent). Cost is
    /// proportional to the formula's own precedents — the range index is
    /// unwound entry by entry, never scanned wholesale.
    pub fn remove(&mut self, addr: CellAddr) {
        let Some(prec) = self.precedents.remove(&addr) else {
            return;
        };
        for p in &prec.cells {
            if let Some(deps) = self.dependents.get_mut(p) {
                deps.retain(|&d| d != addr);
                if deps.is_empty() {
                    self.dependents.remove(p);
                }
            }
        }
        for &r in &prec.ranges {
            self.range_watchers.remove(r, addr);
        }
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.dependents.clear();
        self.range_watchers.clear();
        self.precedents.clear();
    }

    /// Appends the formulae that directly depend on `addr` to `out`.
    pub fn dependents_of(&self, addr: CellAddr, out: &mut Vec<CellAddr>) {
        if let Some(deps) = self.dependents.get(&addr) {
            out.extend_from_slice(deps);
        }
        self.range_watchers.watchers_of(addr, out);
    }

    /// Computes the transitive dirty set reachable from `changed` and
    /// returns it in a safe evaluation order (precedents before
    /// dependents). Formulae on a dependency cycle are returned separately.
    ///
    /// The changed cells themselves are included in the dirty set only when
    /// they are formulae.
    pub fn dirty_order(&self, changed: &[CellAddr]) -> DirtyPlan {
        // 1. BFS over dependents.
        let mut dirty: HashSet<CellAddr> = HashSet::new();
        let mut queue: VecDeque<CellAddr> = VecDeque::new();
        let mut scratch: Vec<CellAddr> = Vec::new();
        for &c in changed {
            if self.contains(c) && dirty.insert(c) {
                queue.push_back(c);
            }
            scratch.clear();
            self.dependents_of(c, &mut scratch);
            for &d in &scratch {
                if dirty.insert(d) {
                    queue.push_back(d);
                }
            }
        }
        while let Some(f) = queue.pop_front() {
            scratch.clear();
            self.dependents_of(f, &mut scratch);
            for &d in &scratch {
                if dirty.insert(d) {
                    queue.push_back(d);
                }
            }
        }
        self.order_subset(&dirty)
    }

    /// Orders every registered formula (used for whole-sheet
    /// recalculation on open).
    pub fn full_order(&self) -> DirtyPlan {
        let all: HashSet<CellAddr> = self.precedents.keys().copied().collect();
        self.order_subset(&all)
    }

    /// Kahn's algorithm over the sub-graph induced by `subset`.
    fn order_subset(&self, subset: &HashSet<CellAddr>) -> DirtyPlan {
        // Index dirty formula cells by column with sorted rows, so range
        // precedents can locate contained dirty formulae by binary search
        // instead of scanning the whole range or the whole dirty set.
        let mut by_col: HashMap<u32, Vec<u32>> = HashMap::new();
        for &a in subset {
            by_col.entry(a.col).or_default().push(a.row);
        }
        for rows in by_col.values_mut() {
            rows.sort_unstable();
        }

        // in-degree and adjacency within the subset.
        let mut indeg: HashMap<CellAddr, u32> = HashMap::with_capacity(subset.len());
        let mut edges: HashMap<CellAddr, Vec<CellAddr>> = HashMap::new();
        for &f in subset {
            indeg.entry(f).or_insert(0);
            let Some(prec) = self.precedents.get(&f) else { continue };
            for &p in &prec.cells {
                if subset.contains(&p) {
                    // Self-references (p == f) register an in-degree that
                    // is never released, correctly classifying the formula
                    // as cyclic.
                    edges.entry(p).or_default().push(f);
                    *indeg.entry(f).or_insert(0) += 1;
                }
            }
            for &r in &prec.ranges {
                for c in r.start.col..=r.end.col {
                    let Some(rows) = by_col.get(&c) else { continue };
                    let lo = rows.partition_point(|&row| row < r.start.row);
                    let hi = rows.partition_point(|&row| row <= r.end.row);
                    for &row in &rows[lo..hi] {
                        let p = CellAddr::new(row, c);
                        edges.entry(p).or_default().push(f);
                        *indeg.entry(f).or_insert(0) += 1;
                    }
                }
            }
        }

        // Wave-synchronous Kahn: process the entire ready frontier as one
        // topological *level* before admitting its successors. Level k
        // therefore holds exactly the formulae whose longest in-subset
        // precedent chain has length k — within a level no formula reads
        // another, which is what lets the recalc engine evaluate a level's
        // formulae concurrently against an immutable snapshot.
        let mut frontier: Vec<CellAddr> = indeg
            .iter()
            .filter_map(|(&a, &d)| if d == 0 { Some(a) } else { None })
            .collect();
        // Deterministic order regardless of hash iteration.
        frontier.sort_unstable();
        let mut order: Vec<CellAddr> = Vec::with_capacity(subset.len());
        let mut level_starts: Vec<usize> = Vec::new();
        while !frontier.is_empty() {
            level_starts.push(order.len());
            let mut newly: Vec<CellAddr> = Vec::new();
            for &f in &frontier {
                order.push(f);
                let Some(next) = edges.get(&f) else { continue };
                for &n in next {
                    let d = indeg.get_mut(&n).expect("node in subset");
                    *d -= 1;
                    if *d == 0 {
                        newly.push(n);
                    }
                }
            }
            newly.sort_unstable();
            frontier = newly;
        }
        let mut cyclic: Vec<CellAddr> = if order.len() == subset.len() {
            Vec::new()
        } else {
            let ordered: HashSet<CellAddr> = order.iter().copied().collect();
            subset.iter().copied().filter(|a| !ordered.contains(a)).collect()
        };
        cyclic.sort_unstable();
        DirtyPlan { order, level_starts, cyclic }
    }
}

/// The result of dirty-set planning: formulae in evaluation order, plus any
/// formulae stuck on dependency cycles.
///
/// The order is stratified into topological levels: `level_starts[k]` is
/// the index in `order` where level `k` begins, and every formula in a
/// level depends only on formulae in strictly earlier levels. A level is
/// therefore safe to evaluate in parallel once the previous level's
/// results are committed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DirtyPlan {
    /// Formulae to evaluate, precedents-first, grouped by level.
    pub order: Vec<CellAddr>,
    /// Start index in `order` of each topological level (first entry 0
    /// whenever `order` is non-empty).
    pub level_starts: Vec<usize>,
    /// Formulae on cycles (to be marked `#CIRC!`).
    pub cyclic: Vec<CellAddr>,
}

impl DirtyPlan {
    /// Number of topological levels.
    pub fn level_count(&self) -> usize {
        self.level_starts.len()
    }

    /// Iterates the levels as slices of `order`, precedents-first.
    pub fn levels(&self) -> impl Iterator<Item = &[CellAddr]> {
        (0..self.level_starts.len()).map(move |k| self.level(k))
    }

    /// The `k`-th level as a slice of `order`.
    pub fn level(&self, k: usize) -> &[CellAddr] {
        let start = self.level_starts[k];
        let end = self.level_starts.get(k + 1).copied().unwrap_or(self.order.len());
        &self.order[start..end]
    }

    /// Size of the widest level — an upper bound on useful parallelism.
    pub fn max_level_width(&self) -> usize {
        self.levels().map(<[CellAddr]>::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::parse;

    fn a(s: &str) -> CellAddr {
        CellAddr::parse(s).unwrap()
    }

    fn graph(entries: &[(&str, &str)]) -> DepGraph {
        let mut g = DepGraph::new();
        for (addr, src) in entries {
            g.add(a(addr), &parse(src).unwrap());
        }
        g
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut g = graph(&[("B1", "A1+A2")]);
        assert!(g.contains(a("B1")));
        let mut deps = Vec::new();
        g.dependents_of(a("A1"), &mut deps);
        assert_eq!(deps, vec![a("B1")]);
        g.remove(a("B1"));
        assert!(g.is_empty());
        deps.clear();
        g.dependents_of(a("A1"), &mut deps);
        assert!(deps.is_empty());
    }

    #[test]
    fn range_watchers_fire_for_contained_cells() {
        let g = graph(&[("C1", "SUM(A1:A10)")]);
        let mut deps = Vec::new();
        g.dependents_of(a("A5"), &mut deps);
        assert_eq!(deps, vec![a("C1")]);
        deps.clear();
        g.dependents_of(a("B5"), &mut deps);
        assert!(deps.is_empty());
    }

    #[test]
    fn dirty_order_respects_chains() {
        // C1 = B1+1, B1 = A1+1: editing A1 must order B1 before C1.
        let g = graph(&[("C1", "B1+1"), ("B1", "A1+1")]);
        let plan = g.dirty_order(&[a("A1")]);
        assert_eq!(plan.order, vec![a("B1"), a("C1")]);
        assert!(plan.cyclic.is_empty());
    }

    #[test]
    fn dirty_order_through_ranges() {
        // B1 = SUM(A1:A3); C1 = B1*2. Editing A2 dirties both, in order.
        let g = graph(&[("B1", "SUM(A1:A3)"), ("C1", "B1*2")]);
        let plan = g.dirty_order(&[a("A2")]);
        assert_eq!(plan.order, vec![a("B1"), a("C1")]);
    }

    #[test]
    fn range_over_formula_cells_creates_edges() {
        // A1, A2 are formulas; B1 = SUM(A1:A2) must come after both.
        let g = graph(&[("A1", "1+1"), ("A2", "A1+1"), ("B1", "SUM(A1:A2)")]);
        let plan = g.full_order();
        let pos =
            |addr: CellAddr| plan.order.iter().position(|&x| x == addr).expect("in order");
        assert!(pos(a("A1")) < pos(a("A2")));
        assert!(pos(a("A2")) < pos(a("B1")));
    }

    #[test]
    fn cycles_are_reported() {
        let g = graph(&[("A1", "B1+1"), ("B1", "A1+1"), ("C1", "5+1")]);
        let plan = g.full_order();
        assert_eq!(plan.order, vec![a("C1")]);
        assert_eq!(plan.cyclic, vec![a("A1"), a("B1")]);
    }

    #[test]
    fn self_reference_is_cyclic() {
        let g = graph(&[("A1", "A1+1")]);
        let plan = g.dirty_order(&[a("A1")]);
        assert!(plan.order.is_empty());
        assert_eq!(plan.cyclic, vec![a("A1")]);
    }

    #[test]
    fn changed_value_cell_is_not_in_order() {
        let g = graph(&[("B1", "A1+1")]);
        let plan = g.dirty_order(&[a("A1")]);
        assert_eq!(plan.order, vec![a("B1")]);
    }

    #[test]
    fn reregistering_replaces_precedents() {
        let mut g = graph(&[("B1", "A1+1")]);
        g.add(a("B1"), &parse("A2+1").unwrap());
        let mut deps = Vec::new();
        g.dependents_of(a("A1"), &mut deps);
        assert!(deps.is_empty());
        g.dependents_of(a("A2"), &mut deps);
        assert_eq!(deps, vec![a("B1")]);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn cumulative_chain_orders_linearly() {
        // The Fig-11 "reusable" pattern: C1=A1, Ci = Ai + C(i-1).
        let mut g = DepGraph::new();
        g.add(a("C1"), &parse("A1").unwrap());
        for i in 2..=50u32 {
            g.add(
                CellAddr::new(i - 1, 2),
                &parse(&format!("A{i}+C{}", i - 1)).unwrap(),
            );
        }
        let plan = g.dirty_order(&[a("A1")]);
        assert_eq!(plan.order.len(), 50);
        for (i, addr) in plan.order.iter().enumerate() {
            assert_eq!(*addr, CellAddr::new(i as u32, 2));
        }
        // A pure chain stratifies into one formula per level.
        assert_eq!(plan.level_count(), 50);
        assert_eq!(plan.max_level_width(), 1);
    }

    #[test]
    fn levels_partition_order_and_respect_dependencies() {
        // Two independent chains plus a join:
        //   B1=A1, C1=B1 and B2=A1, C2=B2, D1=C1+C2.
        let g = graph(&[
            ("B1", "A1+1"),
            ("C1", "B1+1"),
            ("B2", "A1+2"),
            ("C2", "B2+2"),
            ("D1", "C1+C2"),
        ]);
        let plan = g.dirty_order(&[a("A1")]);
        assert_eq!(plan.levels().collect::<Vec<_>>(), vec![
            &[a("B1"), a("B2")][..],
            &[a("C1"), a("C2")][..],
            &[a("D1")][..],
        ]);
        // level_starts indexes a partition of `order`.
        assert_eq!(plan.level_starts[0], 0);
        assert_eq!(plan.levels().map(<[CellAddr]>::len).sum::<usize>(), plan.order.len());
        assert_eq!(plan.max_level_width(), 2);
    }

    /// Reference implementation: the answer `dependents_of` must give for
    /// range precedents, derived by scanning every formula's own ranges.
    fn linear_range_watchers(g: &DepGraph, addr: CellAddr) -> Vec<CellAddr> {
        let mut out: Vec<CellAddr> = g
            .formula_addrs()
            .filter(|&f| {
                g.precedents_of(f)
                    .is_some_and(|p| p.ranges.iter().any(|r| r.contains(addr)))
            })
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn bucketed_range_index_agrees_with_linear_scan() {
        // Mix of narrow ranges, duplicate ranges, overlapping ranges, and
        // a wide range that lands on the overflow list.
        let g = graph(&[
            ("F1", "SUM(A1:A100)"),
            ("F2", "SUM(A50:C150)"),
            ("F3", "SUM(A1:A100)+SUM(B1:B10)"),
            ("F4", "SUM(A1:Z5)"), // 26 columns: wide
            ("F5", "SUM(C3:C3)"),
            ("F6", "COUNT(B5:D60)"),
        ]);
        for addr in [
            a("A1"), a("A50"), a("A100"), a("A101"), a("B1"), a("B5"), a("B10"),
            a("B11"), a("C3"), a("C150"), a("D60"), a("Z5"), a("Z6"), a("AA1"),
        ] {
            let mut bucketed = Vec::new();
            g.dependents_of(addr, &mut bucketed);
            bucketed.sort_unstable();
            assert_eq!(
                bucketed,
                linear_range_watchers(&g, addr),
                "disagreement at {addr:?}"
            );
        }
    }

    #[test]
    fn reregistering_formula_with_changed_ranges_unwinds_index() {
        let mut g = graph(&[("F1", "SUM(A1:A10)+SUM(A1:Z2)")]);
        // Replace both the narrow and the wide range with new ones.
        g.add(a("F1"), &parse("SUM(B1:B5)+SUM(B1:Z9)").unwrap());
        let mut deps = Vec::new();
        g.dependents_of(a("A5"), &mut deps); // old narrow range only
        assert!(deps.is_empty(), "stale narrow entry: {deps:?}");
        g.dependents_of(a("A2"), &mut deps); // old narrow + old wide range
        assert!(deps.is_empty(), "stale wide entry: {deps:?}");
        g.dependents_of(a("B3"), &mut deps); // both new ranges
        assert_eq!(deps, vec![a("F1"), a("F1")]);
        deps.clear();
        g.dependents_of(a("M9"), &mut deps); // new wide range only
        assert_eq!(deps, vec![a("F1")]);
        // Full removal leaves the index truly empty.
        g.remove(a("F1"));
        assert!(g.is_empty());
        assert!(g.range_watchers.by_col.is_empty());
        assert!(g.range_watchers.wide.is_empty());
    }
}
