//! The formula evaluator: a straightforward tree-walking interpreter that
//! resolves every reference cell-by-cell, exactly the execution model the
//! paper infers for the benchmarked systems ("all spreadsheet systems end
//! up leaving formulae uninterpreted, individually looking up the arguments
//! cell-by-cell", §5.6).

pub mod context;

pub use context::{CellSource, EvalCtx, LookupStrategy, ValueMatrix};

use crate::error::CellError;
use crate::formula::ast::{BinOp, Expr, UnaryOp};
use crate::functions::{self, Arg};
use crate::value::Value;

/// Evaluates `expr` in `ctx`, producing a value. Errors propagate as error
/// values (never as Rust errors): a `#DIV/0!` in a subexpression becomes
/// the result, as in real spreadsheets.
pub fn evaluate(expr: &Expr, ctx: &EvalCtx<'_>) -> Value {
    match expr {
        Expr::Number(n) => Value::Number(*n),
        Expr::Text(s) => Value::Text(s.clone()),
        Expr::Bool(b) => Value::Bool(*b),
        Expr::Error(e) => Value::Error(*e),
        Expr::Ref(r) => ctx.read(r.addr),
        // A bare range in scalar position: single-cell ranges collapse to
        // the cell (implicit intersection); larger ranges are a #VALUE!
        // error in this dialect.
        Expr::RangeRef(r) => {
            let range = r.range();
            if range.len() == 1 {
                ctx.read(range.start)
            } else {
                Value::Error(CellError::Value)
            }
        }
        Expr::Unary(op, inner) => eval_unary(*op, inner, ctx),
        Expr::Binary(op, a, b) => eval_binary(*op, a, b, ctx),
        Expr::Call(name, args) => eval_call(name, args, ctx),
    }
}

fn eval_unary(op: UnaryOp, inner: &Expr, ctx: &EvalCtx<'_>) -> Value {
    apply_unary(op, evaluate(inner, ctx))
}

/// Applies a unary operator to an already-evaluated operand. Shared by the
/// tree-walking interpreter and the compiled VM so both backends get the
/// exact same coercion/error semantics.
pub(crate) fn apply_unary(op: UnaryOp, v: Value) -> Value {
    match op {
        UnaryOp::Pos => v,
        UnaryOp::Neg => match v.coerce_number() {
            Ok(n) => Value::Number(-n),
            Err(e) => Value::Error(e),
        },
        UnaryOp::Percent => match v.coerce_number() {
            Ok(n) => Value::Number(n / 100.0),
            Err(e) => Value::Error(e),
        },
    }
}

fn eval_binary(op: BinOp, a: &Expr, b: &Expr, ctx: &EvalCtx<'_>) -> Value {
    let va = evaluate(a, ctx);
    let vb = evaluate(b, ctx);
    apply_binary(op, va, vb)
}

/// Applies a binary operator to already-evaluated operands (both backends;
/// see [`apply_unary`]).
pub(crate) fn apply_binary(op: BinOp, va: Value, vb: Value) -> Value {
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Pow => {
            let (x, y) = match (va.coerce_number(), vb.coerce_number()) {
                (Ok(x), Ok(y)) => (x, y),
                (Err(e), _) | (_, Err(e)) => return Value::Error(e),
            };
            match op {
                BinOp::Add => Value::Number(x + y),
                BinOp::Sub => Value::Number(x - y),
                BinOp::Mul => Value::Number(x * y),
                BinOp::Div => {
                    if y == 0.0 {
                        Value::Error(CellError::Div0)
                    } else {
                        Value::Number(x / y)
                    }
                }
                BinOp::Pow => {
                    let r = x.powf(y);
                    if r.is_finite() {
                        Value::Number(r)
                    } else {
                        Value::Error(CellError::Num)
                    }
                }
                _ => unreachable!(),
            }
        }
        BinOp::Concat => match (va.coerce_text(), vb.coerce_text()) {
            (Ok(x), Ok(y)) => Value::text(x + &y),
            (Err(e), _) | (_, Err(e)) => Value::Error(e),
        },
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            if let Value::Error(e) = va {
                return Value::Error(e);
            }
            if let Value::Error(e) = vb {
                return Value::Error(e);
            }
            let result = match op {
                BinOp::Eq => va.sheet_eq(&vb),
                BinOp::Ne => !va.sheet_eq(&vb),
                _ => {
                    let ord = va.sheet_cmp(&vb);
                    match op {
                        BinOp::Lt => ord.is_lt(),
                        BinOp::Le => ord.is_le(),
                        BinOp::Gt => ord.is_gt(),
                        BinOp::Ge => ord.is_ge(),
                        _ => unreachable!(),
                    }
                }
            };
            Value::Bool(result)
        }
    }
}

fn eval_call(name: &str, args: &[Expr], ctx: &EvalCtx<'_>) -> Value {
    // Short-circuiting forms evaluate their own arguments lazily.
    if name == "IF" {
        return functions::logical::eval_if(args, ctx);
    }
    if name == "IFERROR" {
        return functions::logical::eval_iferror(args, ctx);
    }
    let mut evaluated: Vec<Arg> = Vec::with_capacity(args.len());
    for a in args {
        match a {
            Expr::RangeRef(r) => evaluated.push(Arg::Range(r.range())),
            // A bare cell reference is passed as a one-cell range so that
            // functions keep reference semantics: aggregates apply range
            // rules, `ROW(C7)`-style functions can see the reference
            // itself, and reads are charged where they happen.
            Expr::Ref(r) => evaluated.push(Arg::Range(crate::addr::Range::cell(r.addr))),
            other => evaluated.push(Arg::Value(evaluate(other, ctx))),
        }
    }
    functions::call(name, ctx, &evaluated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::CellAddr;
    use crate::formula::parse;
    use crate::meter::Meter;

    fn fixture() -> ValueMatrix {
        // A: 1..5, B: 10,20,30,40,50, C: text
        let mut m = ValueMatrix::default();
        for r in 0..5u32 {
            m.set(CellAddr::new(r, 0), Value::Number(f64::from(r + 1)));
            m.set(CellAddr::new(r, 1), Value::Number(f64::from((r + 1) * 10)));
            m.set(CellAddr::new(r, 2), Value::text(format!("t{}", r + 1)));
        }
        m
    }

    fn eval_str(src: &str) -> Value {
        let m = fixture();
        let meter = Meter::new();
        let ctx = EvalCtx::new(&m, &meter, CellAddr::new(0, 5));
        evaluate(&parse(src).unwrap(), &ctx)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_str("1+2*3"), Value::Number(7.0));
        assert_eq!(eval_str("(1+2)*3"), Value::Number(9.0));
        assert_eq!(eval_str("2^10"), Value::Number(1024.0));
        assert_eq!(eval_str("7/2"), Value::Number(3.5));
        assert_eq!(eval_str("-A1"), Value::Number(-1.0));
        assert_eq!(eval_str("50%"), Value::Number(0.5));
    }

    #[test]
    fn division_by_zero() {
        assert_eq!(eval_str("1/0"), Value::Error(CellError::Div0));
        // Error propagates through arithmetic.
        assert_eq!(eval_str("1+(1/0)"), Value::Error(CellError::Div0));
    }

    #[test]
    fn pow_domain_error() {
        assert_eq!(eval_str("(-1)^0.5"), Value::Error(CellError::Num));
    }

    #[test]
    fn references_read_cells() {
        assert_eq!(eval_str("A1+B2"), Value::Number(21.0));
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval_str("A1<A2"), Value::Bool(true));
        assert_eq!(eval_str("A1>=1"), Value::Bool(true));
        assert_eq!(eval_str("C1=\"T1\""), Value::Bool(true)); // case-insensitive
        assert_eq!(eval_str("1=\"1\""), Value::Bool(false)); // no cross-type eq
        assert_eq!(eval_str("2<>2"), Value::Bool(false));
        // numbers < text in the type order
        assert_eq!(eval_str("99<\"a\""), Value::Bool(true));
    }

    #[test]
    fn concat_coerces() {
        assert_eq!(eval_str("A1&\" storm\""), Value::text("1 storm"));
        assert_eq!(eval_str("TRUE&1"), Value::text("TRUE1"));
    }

    #[test]
    fn text_arithmetic_coercion() {
        assert_eq!(eval_str("\"4\"+1"), Value::Number(5.0));
        assert_eq!(eval_str("C1+1"), Value::Error(CellError::Value));
    }

    #[test]
    fn bare_range_single_cell_collapses() {
        assert_eq!(eval_str("A1:A1+1"), Value::Number(2.0));
        assert_eq!(eval_str("A1:A3+1"), Value::Error(CellError::Value));
    }

    #[test]
    fn call_dispatch_reaches_functions() {
        assert_eq!(eval_str("SUM(A1:A5)"), Value::Number(15.0));
        assert_eq!(eval_str("ABS(-3)"), Value::Number(3.0));
    }

    #[test]
    fn meter_counts_reads() {
        let m = fixture();
        let meter = Meter::new();
        let ctx = EvalCtx::new(&m, &meter, CellAddr::new(0, 5));
        let _ = evaluate(&parse("SUM(A1:A5)+B1").unwrap(), &ctx);
        // 5 range reads + 1 cell read
        assert_eq!(meter.snapshot().get(crate::meter::Primitive::CellRead), 6);
    }

    #[test]
    fn out_of_bounds_reads_are_empty() {
        assert_eq!(eval_str("Z99"), Value::Empty);
        assert_eq!(eval_str("Z99+1"), Value::Number(1.0));
    }
}
