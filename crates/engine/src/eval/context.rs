//! Evaluation context: how formula evaluation reads the sheet, which
//! lookup strategies are enabled, and where costs are recorded.

use crate::addr::{CellAddr, Range};
use crate::index::IndexStore;
use crate::meter::{Meter, Primitive};
use crate::value::Value;

/// Read access to cell values during evaluation. Implemented by `Sheet`;
/// kept as a trait so the evaluator and function library can be tested with
/// in-memory fixtures and reused by the optimized engine.
pub trait CellSource {
    /// The resolved (displayed) value at `addr`; `Empty` outside bounds.
    fn value_at(&self, addr: CellAddr) -> Value;

    /// Whether the cell at `addr` holds a formula.
    fn is_formula_at(&self, addr: CellAddr) -> bool;

    /// Materialized extent as `(rows, cols)`.
    fn bounds(&self) -> (u32, u32);

    /// Visits every cell of `range` clipped to the materialized extent
    /// (mirrors the "used range" clipping every real system performs), in
    /// storage order: `(addr, value, is_formula)`.
    fn visit_range(&self, range: Range, f: &mut dyn FnMut(CellAddr, &Value, bool));
}

/// Lookup-strategy switches. These correspond to the behavioural
/// differences §4.3.4 infers: Excel terminates exact-match scans at the
/// first hit and binary-searches sorted data for approximate match, while
/// Calc and Google Sheets "continue to scan the entire data".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LookupStrategy {
    /// Stop an exact-match `VLOOKUP` scan at the first match.
    pub early_exit_exact: bool,
    /// Use binary search for approximate-match `VLOOKUP` on sorted data.
    pub binary_search_approx: bool,
}

/// Everything evaluation needs: the cell source, the cost meter, the
/// address of the formula being evaluated (for relative semantics and
/// `ROW()`/`COLUMN()`), the lookup strategy, and a deterministic `NOW()`
/// serial.
pub struct EvalCtx<'a> {
    pub cells: &'a dyn CellSource,
    pub meter: &'a Meter,
    /// The address of the cell whose formula is being evaluated.
    pub current: CellAddr,
    pub lookup: LookupStrategy,
    /// Spreadsheet serial date returned by `NOW()`/`TODAY()`. Fixed and
    /// injectable so runs are reproducible.
    pub now_serial: f64,
    /// Maintained column indexes (the optimized fourth system). `None` —
    /// the common case for the three paper systems — keeps every
    /// aggregate and lookup on the scan path.
    pub indexes: Option<&'a IndexStore>,
}

impl<'a> EvalCtx<'a> {
    /// A context with default strategy and a fixed epoch serial.
    pub fn new(cells: &'a dyn CellSource, meter: &'a Meter, current: CellAddr) -> Self {
        EvalCtx {
            cells,
            meter,
            current,
            lookup: LookupStrategy::default(),
            now_serial: DEFAULT_NOW_SERIAL,
            indexes: None,
        }
    }

    /// Reads one cell, recording the read (and a formula recheck when the
    /// cell holds a formula — the per-cell recalculation trigger the paper
    /// observes when operations touch formula cells, §4.3.3).
    pub fn read(&self, addr: CellAddr) -> Value {
        self.meter.tick(Primitive::CellRead);
        if self.cells.is_formula_at(addr) {
            self.meter.tick(Primitive::FormulaRecheck);
        }
        self.cells.value_at(addr)
    }

    /// Visits a range, recording one read per visited cell (plus rechecks
    /// for formula cells).
    pub fn read_range(&self, range: Range, f: &mut dyn FnMut(CellAddr, &Value)) {
        let meter = self.meter;
        self.cells.visit_range(range, &mut |addr, value, is_formula| {
            meter.tick(Primitive::CellRead);
            if is_formula {
                meter.tick(Primitive::FormulaRecheck);
            }
            f(addr, value);
        });
    }
}

/// 2020-01-01 00:00 as an Excel serial date (days since 1899-12-30).
pub const DEFAULT_NOW_SERIAL: f64 = 43831.0;

/// A simple in-memory `CellSource` for tests and fixtures: a dense
/// row-major matrix of values.
#[derive(Debug, Clone, Default)]
pub struct ValueMatrix {
    rows: Vec<Vec<Value>>,
}

impl ValueMatrix {
    /// Builds from rows of values.
    pub fn new(rows: Vec<Vec<Value>>) -> Self {
        ValueMatrix { rows }
    }

    /// Sets one cell, growing as needed.
    pub fn set(&mut self, addr: CellAddr, v: Value) {
        let r = addr.row as usize;
        let c = addr.col as usize;
        if self.rows.len() <= r {
            self.rows.resize_with(r + 1, Vec::new);
        }
        let row = &mut self.rows[r];
        if row.len() <= c {
            row.resize(c + 1, Value::Empty);
        }
        row[c] = v;
    }
}

impl CellSource for ValueMatrix {
    fn value_at(&self, addr: CellAddr) -> Value {
        self.rows
            .get(addr.row as usize)
            .and_then(|r| r.get(addr.col as usize))
            .cloned()
            .unwrap_or(Value::Empty)
    }

    fn is_formula_at(&self, _addr: CellAddr) -> bool {
        false
    }

    fn bounds(&self) -> (u32, u32) {
        let rows = self.rows.len() as u32;
        let cols = self.rows.iter().map(Vec::len).max().unwrap_or(0) as u32;
        (rows, cols)
    }

    fn visit_range(&self, range: Range, f: &mut dyn FnMut(CellAddr, &Value, bool)) {
        let (nrows, ncols) = self.bounds();
        if nrows == 0 || ncols == 0 {
            return;
        }
        let r1 = range.end.row.min(nrows - 1);
        let c1 = range.end.col.min(ncols - 1);
        for r in range.start.row..=r1 {
            for c in range.start.col..=c1 {
                let v = self
                    .rows
                    .get(r as usize)
                    .and_then(|row| row.get(c as usize))
                    .cloned()
                    .unwrap_or(Value::Empty);
                f(CellAddr::new(r, c), &v, false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_set_get() {
        let mut m = ValueMatrix::default();
        m.set(CellAddr::new(2, 1), Value::Number(5.0));
        assert_eq!(m.value_at(CellAddr::new(2, 1)), Value::Number(5.0));
        assert_eq!(m.value_at(CellAddr::new(0, 0)), Value::Empty);
        assert_eq!(m.bounds(), (3, 2));
    }

    #[test]
    fn ctx_read_charges_meter() {
        let mut m = ValueMatrix::default();
        m.set(CellAddr::new(0, 0), Value::Number(1.0));
        let meter = Meter::new();
        let ctx = EvalCtx::new(&m, &meter, CellAddr::new(0, 0));
        let _ = ctx.read(CellAddr::new(0, 0));
        assert_eq!(meter.snapshot().get(Primitive::CellRead), 1);
    }

    #[test]
    fn ctx_range_read_charges_per_cell() {
        let mut m = ValueMatrix::default();
        for r in 0..4 {
            m.set(CellAddr::new(r, 0), Value::Number(f64::from(r)));
        }
        let meter = Meter::new();
        let ctx = EvalCtx::new(&m, &meter, CellAddr::new(0, 1));
        let mut sum = 0.0;
        ctx.read_range(Range::parse("A1:A4").unwrap(), &mut |_, v| {
            sum += v.as_number().unwrap_or(0.0);
        });
        assert_eq!(sum, 6.0);
        assert_eq!(meter.snapshot().get(Primitive::CellRead), 4);
    }
}
