//! Engine error types: host-level errors (`EngineError`) and in-cell
//! spreadsheet errors (`CellError`, the `#DIV/0!`-style values).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors surfaced by the engine API (as opposed to errors that live *in*
/// cells, which are [`CellError`] values).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A textual reference such as `B7` or `A1:C3` could not be parsed.
    BadReference(String),
    /// A formula failed to parse; the payload is a human-readable reason.
    Parse(String),
    /// A formula exceeded the parser's nesting-depth limit
    /// ([`MAX_FORMULA_DEPTH`](crate::formula::parser::MAX_FORMULA_DEPTH)).
    /// Its own variant (rather than a `Parse` payload) so hosts can
    /// distinguish "malformed" from "well-formed but pathological": the
    /// same bound is enforced on the bytecode side by the verifier's
    /// stack-depth limit (`analyze::MAX_STACK_DEPTH`).
    FormulaTooDeep,
    /// A named sheet or resource does not exist.
    NotFound(String),
    /// An operation was given inconsistent arguments.
    Invalid(String),
    /// An I/O failure during import/export.
    Io(String),
    /// A row permutation handed to sort/permute was not a bijection of
    /// `0..nrows` (wrong length, out-of-range index, or duplicate). The
    /// payload names the first offense.
    BadPermutation(String),
    /// A cell address or grid size beyond the engine's hard limits
    /// (`grid::MAX_ROWS` × `grid::MAX_COLS`), or one whose extent
    /// computation would overflow `u32`.
    OutOfBounds { rows: u32, cols: u32 },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BadReference(s) => write!(f, "bad reference: {s}"),
            EngineError::Parse(s) => write!(f, "formula parse error: {s}"),
            EngineError::FormulaTooDeep => write!(f, "formula too deeply nested"),
            EngineError::NotFound(s) => write!(f, "not found: {s}"),
            EngineError::Invalid(s) => write!(f, "invalid operation: {s}"),
            EngineError::Io(s) => write!(f, "io error: {s}"),
            EngineError::BadPermutation(s) => write!(f, "bad permutation: {s}"),
            EngineError::OutOfBounds { rows, cols } => {
                write!(f, "grid size {rows}x{cols} exceeds engine limits")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e.to_string())
    }
}

/// Spreadsheet cell-level errors, displayed in-grid with the conventional
/// `#NAME?` spellings. These are *values*: they flow through formula
/// evaluation exactly like numbers do in real spreadsheet systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellError {
    /// Division by zero (`#DIV/0!`).
    Div0,
    /// Wrong argument type or unparseable formula context (`#VALUE!`).
    Value,
    /// Reference to a deleted/off-sheet cell (`#REF!`).
    Ref,
    /// Unknown function or name (`#NAME?`).
    Name,
    /// Lookup found no match (`#N/A`).
    Na,
    /// Numeric overflow/domain error (`#NUM!`).
    Num,
    /// Circular dependency detected (`#CIRC!` — rendered as Excel's `0`
    /// with a warning in real systems; we make it explicit).
    Circular,
}

impl CellError {
    /// The conventional display spelling.
    pub const fn code(self) -> &'static str {
        match self {
            CellError::Div0 => "#DIV/0!",
            CellError::Value => "#VALUE!",
            CellError::Ref => "#REF!",
            CellError::Name => "#NAME?",
            CellError::Na => "#N/A",
            CellError::Num => "#NUM!",
            CellError::Circular => "#CIRC!",
        }
    }
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_error_codes() {
        assert_eq!(CellError::Div0.to_string(), "#DIV/0!");
        assert_eq!(CellError::Na.code(), "#N/A");
        assert_eq!(CellError::Circular.code(), "#CIRC!");
    }

    #[test]
    fn engine_error_display() {
        assert_eq!(EngineError::BadReference("Q".into()).to_string(), "bad reference: Q");
        assert!(EngineError::Parse("x".into()).to_string().contains("parse"));
        assert!(EngineError::FormulaTooDeep.to_string().contains("deeply nested"));
        assert!(EngineError::BadPermutation("len 2 != 3".into())
            .to_string()
            .contains("bad permutation"));
        assert!(EngineError::OutOfBounds { rows: u32::MAX, cols: 1 }
            .to_string()
            .contains("exceeds engine limits"));
    }
}
