//! A workbook: an ordered collection of named sheets. The pivot experiment
//! (§4.3.2) inserts its result "in a new worksheet", which is the trigger
//! the paper suspects causes formula recomputation in Excel and Sheets.

use serde::{Deserialize, Serialize};

use crate::error::EngineError;
use crate::io::{self, SheetData};
use crate::recalc::RecalcOptions;
use crate::sheet::{Layout, Sheet};

/// A serializable workbook document: named sheet documents in order.
/// Serialize with any serde format (the harness uses JSON).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WorkbookData {
    pub sheets: Vec<(String, SheetData)>,
}

/// An ordered collection of named sheets.
#[derive(Debug, Default)]
pub struct Workbook {
    sheets: Vec<(String, Sheet)>,
}

impl Workbook {
    /// An empty workbook.
    pub fn new() -> Self {
        Workbook::default()
    }

    /// A workbook containing one sheet named `Sheet1`.
    pub fn with_sheet(sheet: Sheet) -> Self {
        let mut wb = Workbook::new();
        wb.sheets.push(("Sheet1".to_owned(), sheet));
        wb
    }

    /// Number of sheets.
    pub fn len(&self) -> usize {
        self.sheets.len()
    }

    /// True when there are no sheets.
    pub fn is_empty(&self) -> bool {
        self.sheets.is_empty()
    }

    /// Sheet names in order.
    pub fn names(&self) -> Vec<&str> {
        self.sheets.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Appends a sheet; fails on duplicate names.
    pub fn insert(&mut self, name: impl Into<String>, sheet: Sheet) -> Result<(), EngineError> {
        let name = name.into();
        if self.get(&name).is_some() {
            return Err(EngineError::Invalid(format!("duplicate sheet name {name:?}")));
        }
        self.sheets.push((name, sheet));
        Ok(())
    }

    /// Removes a sheet by name, returning it.
    pub fn remove(&mut self, name: &str) -> Option<Sheet> {
        let idx = self.sheets.iter().position(|(n, _)| n == name)?;
        Some(self.sheets.remove(idx).1)
    }

    /// Borrows a sheet by name.
    pub fn get(&self, name: &str) -> Option<&Sheet> {
        self.sheets.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Mutably borrows a sheet by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Sheet> {
        self.sheets.iter_mut().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Iterates `(name, sheet)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Sheet)> {
        self.sheets.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Applies the same recalculation executor knobs to every sheet.
    /// Sheets inserted later keep their own options; set them before
    /// inserting or call this again.
    pub fn set_recalc_options(&mut self, opts: RecalcOptions) {
        for (_, sheet) in &mut self.sheets {
            sheet.set_recalc_options(opts);
        }
    }

    /// Serializes every sheet to its document form.
    pub fn to_data(&self) -> WorkbookData {
        WorkbookData {
            sheets: self.sheets.iter().map(|(n, s)| (n.clone(), io::save(s))).collect(),
        }
    }

    /// Materializes a workbook from its document form, recalculating
    /// every sheet's formulae (the open semantics of §4.1, per sheet).
    pub fn from_data(data: &WorkbookData) -> Result<Self, EngineError> {
        let mut wb = Workbook::new();
        for (name, sheet_data) in &data.sheets {
            let mut sheet = io::open(sheet_data, Layout::RowMajor)?;
            crate::recalc::open_recalc(&mut sheet);
            wb.insert(name.clone(), sheet)?;
        }
        Ok(wb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut wb = Workbook::with_sheet(Sheet::new());
        assert_eq!(wb.len(), 1);
        wb.insert("Pivot", Sheet::new()).unwrap();
        assert_eq!(wb.names(), ["Sheet1", "Pivot"]);
        assert!(wb.get("Pivot").is_some());
        assert!(wb.get_mut("Sheet1").is_some());
        assert!(wb.remove("Pivot").is_some());
        assert_eq!(wb.len(), 1);
        assert!(wb.remove("Pivot").is_none());
    }

    #[test]
    fn recalc_options_propagate_to_all_sheets() {
        let mut wb = Workbook::with_sheet(Sheet::new());
        wb.insert("Other", Sheet::new()).unwrap();
        let opts = RecalcOptions::with_parallelism(3);
        wb.set_recalc_options(opts);
        assert_eq!(wb.get("Sheet1").unwrap().recalc_options(), opts);
        assert_eq!(wb.get("Other").unwrap().recalc_options(), opts);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut wb = Workbook::with_sheet(Sheet::new());
        assert!(wb.insert("Sheet1", Sheet::new()).is_err());
    }

    #[test]
    fn iteration_order_is_insertion_order() {
        let mut wb = Workbook::new();
        wb.insert("b", Sheet::new()).unwrap();
        wb.insert("a", Sheet::new()).unwrap();
        let names: Vec<&str> = wb.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["b", "a"]);
    }

    #[test]
    fn workbook_data_round_trip() {
        use crate::addr::CellAddr;
        use crate::value::Value;
        let mut data_sheet = Sheet::new();
        data_sheet.set_value(CellAddr::new(0, 0), 40);
        data_sheet.set_value(CellAddr::new(1, 0), 2);
        let mut summary = Sheet::new();
        summary.set_formula_str(CellAddr::new(0, 0), "=40+2").unwrap();
        let mut wb = Workbook::with_sheet(data_sheet);
        wb.insert("Summary", summary).unwrap();

        let data = wb.to_data();
        assert_eq!(data.sheets.len(), 2);
        let restored = Workbook::from_data(&data).unwrap();
        assert_eq!(restored.names(), ["Sheet1", "Summary"]);
        // Formulae were recalculated on open.
        assert_eq!(
            restored.get("Summary").unwrap().value(CellAddr::new(0, 0)),
            Value::Number(42.0)
        );
        // Round-trips stably.
        assert_eq!(restored.to_data(), data);
    }

    #[test]
    fn workbook_data_serde_round_trip() {
        let mut sheet = Sheet::new();
        sheet.set_value(crate::addr::CellAddr::new(0, 0), "hello");
        let wb = Workbook::with_sheet(sheet);
        let data = wb.to_data();
        // serde round trip through a self-describing format stand-in.
        let tokens = serde_json_like(&data);
        assert!(tokens.contains("Sheet1"));
        assert!(tokens.contains("hello"));
    }

    /// Minimal structural check without pulling a JSON dependency into the
    /// engine: uses the Debug rendering of the serializable struct.
    fn serde_json_like(data: &WorkbookData) -> String {
        format!("{data:?}")
    }
}
