//! Canonical formula printing. The printer emits a normalized surface form
//! (uppercase function names, no whitespace, minimal parentheses via
//! precedence) that round-trips through the parser; it doubles as the
//! canonical text used for formula hashing in the redundant-computation
//! optimizer (§5.4: "testing for formula equality, e.g. by hashing the
//! formulae and identifying matches").

use std::fmt::Write;

use crate::formula::ast::{Expr, UnaryOp};
use crate::value::format_number;

/// Renders an expression in canonical form (without the leading `=`).
pub fn print(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, 0);
    out
}

/// Writes `expr` into `out`; wraps in parentheses when the expression's
/// top-level operator binds looser than `min_prec`.
fn write_expr(out: &mut String, expr: &Expr, min_prec: u8) {
    match expr {
        Expr::Number(n) => {
            let _ = write!(out, "{}", format_number(*n));
        }
        Expr::Text(s) => {
            let _ = write!(out, "\"{}\"", s.replace('"', "\"\""));
        }
        Expr::Bool(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
        Expr::Error(e) => out.push_str(e.code()),
        Expr::Ref(r) => {
            let _ = write!(out, "{r}");
        }
        Expr::RangeRef(r) => {
            let _ = write!(out, "{}:{}", r.start, r.end);
        }
        Expr::Unary(op, inner) => match op {
            UnaryOp::Neg => {
                out.push('-');
                write_expr(out, inner, UNARY_PREC);
            }
            UnaryOp::Pos => {
                out.push('+');
                write_expr(out, inner, UNARY_PREC);
            }
            UnaryOp::Percent => {
                write_expr(out, inner, UNARY_PREC);
                out.push('%');
            }
        },
        Expr::Binary(op, a, b) => {
            let prec = op.precedence();
            let wrap = prec < min_prec;
            if wrap {
                out.push('(');
            }
            // Left child may share our precedence for left-assoc ops;
            // right child must bind strictly tighter unless right-assoc.
            let (lmin, rmin) =
                if op.right_assoc() { (prec + 1, prec) } else { (prec, prec + 1) };
            write_expr(out, a, lmin);
            out.push_str(op.symbol());
            write_expr(out, b, rmin);
            if wrap {
                out.push(')');
            }
        }
        Expr::Call(name, args) => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_expr(out, a, 0);
            }
            out.push(')');
        }
    }
}

/// Operands of unary operators bind tighter than any binary operator.
const UNARY_PREC: u8 = 6;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::parser::parse;

    fn round_trip(src: &str) -> String {
        print(&parse(src).unwrap())
    }

    #[test]
    fn canonical_spelling() {
        assert_eq!(round_trip("sum( A1 : A3 )"), "SUM(A1:A3)");
        assert_eq!(round_trip("1 + 2*3"), "1+2*3");
        assert_eq!(round_trip(r#"countif(C2, "STORM")"#), "COUNTIF(C2,\"STORM\")");
    }

    #[test]
    fn parenthesization_minimal_but_sufficient() {
        assert_eq!(round_trip("(1+2)*3"), "(1+2)*3");
        assert_eq!(round_trip("1+(2*3)"), "1+2*3");
        // `+` binds tighter than `&`, so these parens are redundant…
        assert_eq!(round_trip("(A1+B1)&\"x\""), "A1+B1&\"x\"");
        // …while `=` binds looser than `&`, so these are required.
        assert_eq!(round_trip("(A1=B1)&\"x\""), "(A1=B1)&\"x\"");
    }

    #[test]
    fn associativity_preserved() {
        // (10-4)-3 prints without parens; 10-(4-3) needs them.
        assert_eq!(round_trip("10-4-3"), "10-4-3");
        assert_eq!(round_trip("10-(4-3)"), "10-(4-3)");
        assert_eq!(round_trip("2^(3^2)"), "2^3^2");
        assert_eq!(round_trip("(2^3)^2"), "(2^3)^2");
    }

    #[test]
    fn print_parse_fixpoint() {
        for src in [
            "1+2*3",
            "-A1%",
            "IF(A1>=0,SUM($B$1:B10),\"neg\")",
            "10-(4-3)",
            "A1&B1&\"s\"",
            "#N/A",
            "TRUE=FALSE",
            "VLOOKUP(200000,A1:B500000,2,FALSE)",
        ] {
            let once = round_trip(src);
            let twice = print(&parse(&once).unwrap());
            assert_eq!(once, twice, "fixpoint for {src:?}");
        }
    }

    #[test]
    fn string_escaping_round_trips() {
        let printed = round_trip(r#""say ""hi""""#);
        assert_eq!(printed, r#""say ""hi""""#);
        assert_eq!(print(&parse(&printed).unwrap()), printed);
    }

    #[test]
    fn absolute_markers_survive() {
        assert_eq!(round_trip("$A$1+B$2+$C3"), "$A$1+B$2+$C3");
    }
}
