//! The formula language: lexer, parser, AST, and canonical printer.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod r1c1;

pub use ast::{BinOp, Expr, RangeRef, UnaryOp};
pub use parser::{parse, parse_with, NameResolver, NoNames};
pub use printer::print;
