//! Recursive-descent (precedence-climbing) parser for the formula language.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! expr        := cmp
//! cmp         := concat (( = | <> | < | <= | > | >= ) concat)*
//! concat      := addsub (& addsub)*
//! addsub      := muldiv (( + | - ) muldiv)*
//! muldiv      := pow (( * | / ) pow)*
//! pow         := postfix (^ pow)          -- right associative
//! postfix     := unary (%)*
//! unary       := ( - | + ) unary | primary
//! primary     := number | string | TRUE | FALSE | errorlit
//!              | name '(' args ')' | ref (':' ref)? | '(' expr ')'
//! ```

use crate::addr::CellRef;
use crate::error::{CellError, EngineError};
use crate::formula::ast::{BinOp, Expr, RangeRef, UnaryOp};
use crate::formula::lexer::{lex, Token};

/// Resolves bare identifiers that are neither function calls, booleans,
/// nor cell references — i.e. named ranges. Resolution happens at entry
/// time, as a simplification of the live name binding real systems keep.
pub trait NameResolver {
    /// The range a name denotes, or `None` for an unknown name.
    fn resolve(&self, name: &str) -> Option<RangeRef>;
}

/// The default resolver: no names defined.
pub struct NoNames;

impl NameResolver for NoNames {
    fn resolve(&self, _name: &str) -> Option<RangeRef> {
        None
    }
}

/// Maximum expression-tree depth the parser will build. Deeper input —
/// whether 10k nested parentheses or a 10k-term left-leaning chain —
/// fails cleanly with [`EngineError::FormulaTooDeep`] instead of risking
/// recursion overflow here or in any of the recursive consumers
/// downstream (printer, normalizer, lowerer, interpreter, analyzer). The
/// bytecode verifier enforces the matching bound on compiled programs
/// (`analyze::MAX_STACK_DEPTH`).
pub const MAX_FORMULA_DEPTH: usize = 512;

/// Parses a formula body (no leading `=`) into an expression tree.
pub fn parse(input: &str) -> Result<Expr, EngineError> {
    parse_with(input, &NoNames)
}

/// [`parse`] with a named-range resolver.
pub fn parse_with(input: &str, names: &dyn NameResolver) -> Result<Expr, EngineError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0, depth: 0, names };
    let expr = p.parse_expr(0)?;
    if p.pos != p.tokens.len() {
        return Err(EngineError::Parse(format!(
            "trailing tokens after expression (at token {})",
            p.pos
        )));
    }
    Ok(expr)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    /// Current expression-tree nesting level, bounded by
    /// [`MAX_FORMULA_DEPTH`]. Counts *tree* depth, not call-stack depth:
    /// the iteratively built left-leaning shapes (binary-operator chains,
    /// `%` postfix chains) charge it per wrap too.
    depth: usize,
    names: &'a dyn NameResolver,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token, ctx: &str) -> Result<(), EngineError> {
        match self.next() {
            Some(ref t) if t == want => Ok(()),
            other => Err(EngineError::Parse(format!("expected {want:?} {ctx}, found {other:?}"))),
        }
    }

    fn binop_of(token: &Token) -> Option<BinOp> {
        Some(match token {
            Token::Plus => BinOp::Add,
            Token::Minus => BinOp::Sub,
            Token::Star => BinOp::Mul,
            Token::Slash => BinOp::Div,
            Token::Caret => BinOp::Pow,
            Token::Amp => BinOp::Concat,
            Token::Eq => BinOp::Eq,
            Token::Ne => BinOp::Ne,
            Token::Lt => BinOp::Lt,
            Token::Le => BinOp::Le,
            Token::Gt => BinOp::Gt,
            Token::Ge => BinOp::Ge,
        _ => return None,
        })
    }

    /// One more nesting level, or [`EngineError::FormulaTooDeep`] once the
    /// resulting tree would exceed [`MAX_FORMULA_DEPTH`].
    fn deeper(&mut self) -> Result<(), EngineError> {
        self.depth += 1;
        if self.depth > MAX_FORMULA_DEPTH {
            return Err(EngineError::FormulaTooDeep);
        }
        Ok(())
    }

    /// Precedence-climbing over binary operators.
    fn parse_expr(&mut self, min_prec: u8) -> Result<Expr, EngineError> {
        let mut lhs = self.parse_unary()?;
        let mut grown = 0usize;
        let out = loop {
            let Some(op) = self.peek().and_then(Self::binop_of) else {
                break Ok(lhs);
            };
            let prec = op.precedence();
            if prec < min_prec {
                break Ok(lhs);
            }
            self.next();
            // Each iteration wraps `lhs` one level deeper without
            // recursing, so left-leaning chains (`1+1+…`) must charge the
            // depth counter here to hit the same limit as nested input.
            grown += 1;
            if let Err(e) = self.deeper() {
                break Err(e);
            }
            let next_min = if op.right_assoc() { prec } else { prec + 1 };
            match self.parse_expr(next_min) {
                Ok(rhs) => lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs)),
                Err(e) => break Err(e),
            }
        };
        self.depth -= grown;
        out
    }

    fn parse_unary(&mut self) -> Result<Expr, EngineError> {
        // Every recursion cycle in the grammar passes through here
        // (parentheses, call arguments, unary chains, right-associative
        // `^`), so this one guard bounds all recursive descent.
        self.deeper()?;
        let e = match self.peek() {
            Some(Token::Minus) => {
                self.next();
                self.parse_unary().map(|x| Expr::Unary(UnaryOp::Neg, Box::new(x)))
            }
            Some(Token::Plus) => {
                self.next();
                self.parse_unary().map(|x| Expr::Unary(UnaryOp::Pos, Box::new(x)))
            }
            _ => self.parse_postfix(),
        };
        self.depth -= 1;
        e
    }

    fn parse_postfix(&mut self) -> Result<Expr, EngineError> {
        let mut e = self.parse_primary()?;
        let mut grown = 0usize;
        let mut status = Ok(());
        while self.peek() == Some(&Token::Percent) {
            self.next();
            // Like the binary loop: `1%%%…` deepens the tree iteratively.
            grown += 1;
            if let Err(err) = self.deeper() {
                status = Err(err);
                break;
            }
            e = Expr::Unary(UnaryOp::Percent, Box::new(e));
        }
        self.depth -= grown;
        status.map(|()| e)
    }

    fn parse_primary(&mut self) -> Result<Expr, EngineError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(Expr::Number(n)),
            Some(Token::Str(s)) => Ok(Expr::Text(s.into())),
            Some(Token::ErrorLit(s)) => Ok(Expr::Error(parse_error_literal(&s)?)),
            Some(Token::LParen) => {
                let e = self.parse_expr(0)?;
                self.expect(&Token::RParen, "to close parenthesized expression")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => self.parse_ident(name),
            other => Err(EngineError::Parse(format!("unexpected token {other:?}"))),
        }
    }

    /// Disambiguates identifiers: function call (when followed by `(`),
    /// boolean literal, cell reference, or range reference.
    fn parse_ident(&mut self, name: String) -> Result<Expr, EngineError> {
        if self.peek() == Some(&Token::LParen) {
            self.next();
            let mut args = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    args.push(self.parse_expr(0)?);
                    match self.peek() {
                        Some(Token::Comma) => {
                            self.next();
                        }
                        _ => break,
                    }
                }
            }
            self.expect(&Token::RParen, "to close argument list")?;
            return Ok(Expr::Call(name.to_ascii_uppercase(), args));
        }
        let upper = name.to_ascii_uppercase();
        if upper == "TRUE" {
            return Ok(Expr::Bool(true));
        }
        if upper == "FALSE" {
            return Ok(Expr::Bool(false));
        }
        let start = match CellRef::parse(&name) {
            Ok(r) => r,
            Err(_) => {
                // Not a reference: try the named-range resolver.
                if let Some(range) = self.names.resolve(&name) {
                    return Ok(if range.range().len() == 1 {
                        Expr::Ref(range.start)
                    } else {
                        Expr::RangeRef(range)
                    });
                }
                return Err(EngineError::Parse(format!("unknown name {name:?}")));
            }
        };
        if self.peek() == Some(&Token::Colon) {
            self.next();
            let end_tok = self.next();
            let Some(Token::Ident(end_name)) = end_tok else {
                return Err(EngineError::Parse(format!(
                    "expected reference after ':' in range, found {end_tok:?}"
                )));
            };
            let end = CellRef::parse(&end_name)
                .map_err(|_| EngineError::Parse(format!("bad range end {end_name:?}")))?;
            return Ok(Expr::RangeRef(RangeRef { start, end }));
        }
        Ok(Expr::Ref(start))
    }
}

/// Maps error-literal spellings to [`CellError`] values.
fn parse_error_literal(s: &str) -> Result<CellError, EngineError> {
    match s.to_ascii_uppercase().as_str() {
        "#DIV/0!" => Ok(CellError::Div0),
        "#VALUE!" => Ok(CellError::Value),
        "#REF!" => Ok(CellError::Ref),
        "#NAME?" => Ok(CellError::Name),
        "#N/A" => Ok(CellError::Na),
        "#NUM!" => Ok(CellError::Num),
        "#CIRC!" => Ok(CellError::Circular),
        other => Err(EngineError::Parse(format!("unknown error literal {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Range;

    fn p(s: &str) -> Expr {
        parse(s).unwrap_or_else(|e| panic!("parse {s:?}: {e}"))
    }

    #[test]
    fn parses_precedence() {
        // 1+2*3 parses as 1+(2*3)
        match p("1+2*3") {
            Expr::Binary(BinOp::Add, lhs, rhs) => {
                assert_eq!(*lhs, Expr::Number(1.0));
                assert!(matches!(*rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pow_is_right_assoc() {
        // 2^3^2 parses as 2^(3^2)
        match p("2^3^2") {
            Expr::Binary(BinOp::Pow, _, rhs) => {
                assert!(matches!(*rhs, Expr::Binary(BinOp::Pow, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn addsub_is_left_assoc() {
        // 10-4-3 parses as (10-4)-3
        match p("10-4-3") {
            Expr::Binary(BinOp::Sub, lhs, rhs) => {
                assert!(matches!(*lhs, Expr::Binary(BinOp::Sub, _, _)));
                assert_eq!(*rhs, Expr::Number(3.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comparison_binds_loosest() {
        // A1+1 = B1*2 parses as (A1+1) = (B1*2)
        match p("A1+1=B1*2") {
            Expr::Binary(BinOp::Eq, lhs, rhs) => {
                assert!(matches!(*lhs, Expr::Binary(BinOp::Add, _, _)));
                assert!(matches!(*rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_function_calls() {
        match p(r#"COUNTIF(K2:K500000,1)"#) {
            Expr::Call(name, args) => {
                assert_eq!(name, "COUNTIF");
                assert_eq!(args.len(), 2);
                match &args[0] {
                    Expr::RangeRef(r) => {
                        assert_eq!(r.range(), Range::parse("K2:K500000").unwrap())
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn function_names_are_uppercased() {
        match p("sum(A1:A3)") {
            Expr::Call(name, _) => assert_eq!(name, "SUM"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nullary_and_nested_calls() {
        assert_eq!(p("PI()"), Expr::Call("PI".into(), vec![]));
        match p("IF(A1>0,SUM(B1:B9),0)") {
            Expr::Call(name, args) => {
                assert_eq!(name, "IF");
                assert!(matches!(args[1], Expr::Call(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn log10_is_function_when_called_and_ref_otherwise() {
        assert!(matches!(p("LOG10(100)"), Expr::Call(_, _)));
        // LOG10 not followed by '(' is the cell at column LOG row 10.
        assert!(matches!(p("LOG10"), Expr::Ref(_)));
    }

    #[test]
    fn parses_booleans() {
        assert_eq!(p("TRUE"), Expr::Bool(true));
        assert_eq!(p("false"), Expr::Bool(false));
    }

    #[test]
    fn parses_unary_chain() {
        assert_eq!(
            p("--2"),
            Expr::Unary(
                UnaryOp::Neg,
                Box::new(Expr::Unary(UnaryOp::Neg, Box::new(Expr::Number(2.0))))
            )
        );
    }

    #[test]
    fn parses_percent_postfix() {
        assert_eq!(p("50%"), Expr::Unary(UnaryOp::Percent, Box::new(Expr::Number(50.0))));
    }

    #[test]
    fn parses_error_literals() {
        assert_eq!(p("#N/A"), Expr::Error(CellError::Na));
        assert_eq!(p("IFERROR(#DIV/0!,0)").node_count(), 3);
    }

    #[test]
    fn parses_absolute_range() {
        match p("SUM($A$1:A10)") {
            Expr::Call(_, args) => match &args[0] {
                Expr::RangeRef(r) => {
                    assert!(r.start.abs_row && r.start.abs_col);
                    assert!(!r.end.abs_row && !r.end.abs_col);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "1+", "SUM(", "SUM(1,", "(1", "1)", "FOO", "A1:", "A1:2", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_parens_fail_cleanly() {
        // 10k nested parentheses must not blow the stack: the parser
        // bails with the dedicated error once MAX_FORMULA_DEPTH is hit.
        let src = format!("{}1{}", "(".repeat(10_000), ")".repeat(10_000));
        assert_eq!(parse(&src), Err(EngineError::FormulaTooDeep));
    }

    #[test]
    fn deep_chains_fail_cleanly() {
        // Left-leaning shapes are built iteratively, so without explicit
        // accounting they would parse into trees too deep for the
        // recursive consumers downstream. Both chain kinds must hit the
        // same limit as nested parentheses.
        let chain = format!("1{}", "+1".repeat(10_000));
        assert_eq!(parse(&chain), Err(EngineError::FormulaTooDeep));
        let percents = format!("1{}", "%".repeat(10_000));
        assert_eq!(parse(&percents), Err(EngineError::FormulaTooDeep));
        let negs = format!("{}1", "-".repeat(10_000));
        assert_eq!(parse(&negs), Err(EngineError::FormulaTooDeep));
    }

    #[test]
    fn near_limit_depth_still_parses() {
        let deep = format!("{}1{}", "(".repeat(400), ")".repeat(400));
        assert!(parse(&deep).is_ok());
        let chain = format!("1{}", "+1".repeat(400));
        assert!(parse(&chain).is_ok());
        // The counter must unwind correctly between sibling subtrees: many
        // shallow arguments in sequence stay far below the limit even when
        // their total node count is large.
        let args = vec!["(1+2)"; 300].join(",");
        assert!(parse(&format!("SUM({args})")).is_ok());
    }

    #[test]
    fn string_concat_parses() {
        match p(r#"A1&" storms""#) {
            Expr::Binary(BinOp::Concat, _, rhs) => {
                assert_eq!(*rhs, Expr::Text(" storms".into()))
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
