//! R1C1-relative reference normalization.
//!
//! A fill-down column like `=A2*2+$E$1` copied over 500k rows is one
//! *template* instantiated at 500k origins: every copy has the same
//! R1C1-relative spelling (`RC[-3]*2+R1C5`). Normalizing a formula to that
//! spelling — relative axes as signed offsets from the evaluating cell,
//! absolute axes pinned — yields the key under which the compiler caches
//! one program per template instead of one per cell (Tyszkiewicz's
//! template view of spreadsheet programs; ISSUE 4).

use std::fmt;
use std::fmt::Write;

use crate::addr::{CellAddr, CellRef};
use crate::formula::ast::{Expr, RangeRef, UnaryOp};
use crate::value::format_number;

/// One axis of a normalized reference: a signed offset from the evaluating
/// cell (relative) or a pinned zero-based coordinate (absolute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Relative: `coordinate = evaluating cell + offset`.
    Rel(i64),
    /// Absolute: the coordinate itself, zero-based.
    Abs(u32),
}

impl Axis {
    fn new(coord: u32, absolute: bool, origin: u32) -> Axis {
        if absolute {
            Axis::Abs(coord)
        } else {
            Axis::Rel(i64::from(coord) - i64::from(origin))
        }
    }

    /// Resolves the axis against the evaluating cell's coordinate; `None`
    /// when a relative offset lands off the sheet.
    pub fn resolve(self, at: u32) -> Option<u32> {
        match self {
            Axis::Abs(c) => Some(c),
            Axis::Rel(d) => {
                let c = i64::from(at) + d;
                u32::try_from(c).ok()
            }
        }
    }

    fn write(self, out: &mut impl Write, letter: char) -> fmt::Result {
        match self {
            // Classic R1C1 spells absolutes 1-based (`R1` is the first row).
            Axis::Abs(c) => write!(out, "{letter}{}", u64::from(c) + 1),
            Axis::Rel(0) => write!(out, "{letter}"),
            Axis::Rel(d) => write!(out, "{letter}[{d}]"),
        }
    }
}

/// A cell reference normalized to R1C1 form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RefSpec {
    pub row: Axis,
    pub col: Axis,
}

impl RefSpec {
    /// Normalizes `r` as written in a formula anchored at `origin`.
    pub fn from_ref(r: CellRef, origin: CellAddr) -> RefSpec {
        RefSpec {
            row: Axis::new(r.addr.row, r.abs_row, origin.row),
            col: Axis::new(r.addr.col, r.abs_col, origin.col),
        }
    }

    /// Resolves back to a concrete address at the evaluating cell `at`.
    /// Inverse of [`RefSpec::from_ref`]: resolving at the anchoring origin
    /// reproduces the original address exactly.
    pub fn resolve(self, at: CellAddr) -> Option<CellAddr> {
        Some(CellAddr::new(self.row.resolve(at.row)?, self.col.resolve(at.col)?))
    }
}

impl fmt::Display for RefSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.row.write(f, 'R')?;
        self.col.write(f, 'C')
    }
}

/// A range reference normalized to R1C1 form (per-corner specs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RangeSpec {
    pub start: RefSpec,
    pub end: RefSpec,
}

impl RangeSpec {
    /// Normalizes `r` anchored at `origin`.
    pub fn from_range(r: &RangeRef, origin: CellAddr) -> RangeSpec {
        RangeSpec {
            start: RefSpec::from_ref(r.start, origin),
            end: RefSpec::from_ref(r.end, origin),
        }
    }
}

impl fmt::Display for RangeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.start, self.end)
    }
}

/// Renders `expr`, anchored at `origin`, in canonical R1C1-relative form.
/// Two formulas produce the same string iff they are copies of one template
/// (same shape, same literals, references at the same relative offsets /
/// absolute pins), which is exactly the equivalence class the program cache
/// keys on.
pub fn normalize(expr: &Expr, origin: CellAddr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, origin, 0);
    out
}

/// Mirrors `printer::write_expr` (same minimal-parenthesization rules) with
/// references spelled in R1C1.
fn write_expr(out: &mut String, expr: &Expr, origin: CellAddr, min_prec: u8) {
    match expr {
        Expr::Number(n) => {
            let _ = write!(out, "{}", format_number(*n));
        }
        Expr::Text(s) => {
            let _ = write!(out, "\"{}\"", s.replace('"', "\"\""));
        }
        Expr::Bool(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
        Expr::Error(e) => out.push_str(e.code()),
        Expr::Ref(r) => {
            let _ = write!(out, "{}", RefSpec::from_ref(*r, origin));
        }
        Expr::RangeRef(r) => {
            let _ = write!(out, "{}", RangeSpec::from_range(r, origin));
        }
        Expr::Unary(op, inner) => match op {
            UnaryOp::Neg => {
                out.push('-');
                write_expr(out, inner, origin, UNARY_PREC);
            }
            UnaryOp::Pos => {
                out.push('+');
                write_expr(out, inner, origin, UNARY_PREC);
            }
            UnaryOp::Percent => {
                write_expr(out, inner, origin, UNARY_PREC);
                out.push('%');
            }
        },
        Expr::Binary(op, a, b) => {
            let prec = op.precedence();
            let wrap = prec < min_prec;
            if wrap {
                out.push('(');
            }
            let (lmin, rmin) =
                if op.right_assoc() { (prec + 1, prec) } else { (prec, prec + 1) };
            write_expr(out, a, origin, lmin);
            out.push_str(op.symbol());
            write_expr(out, b, origin, rmin);
            if wrap {
                out.push(')');
            }
        }
        Expr::Call(name, args) => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_expr(out, a, origin, 0);
            }
            out.push(')');
        }
    }
}

const UNARY_PREC: u8 = 6;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::parse;

    fn at(a1: &str) -> CellAddr {
        CellAddr::parse(a1).unwrap()
    }

    fn norm(src: &str, origin: &str) -> String {
        normalize(&parse(src).unwrap(), at(origin))
    }

    #[test]
    fn relative_and_absolute_axes() {
        // Anchored at D2: A2 is 3 columns left, same row; $E$1 is pinned.
        assert_eq!(norm("A2*2+$E$1", "D2"), "RC[-3]*2+R1C5");
        // Mixed anchors keep exactly the absolute axis pinned.
        assert_eq!(norm("A$1+$A1", "B2"), "R1C[-1]+R[-1]C1");
    }

    #[test]
    fn fill_down_copies_share_a_template() {
        let origin = at("D2");
        let e = parse("A2*2+$E$1").unwrap();
        let key = normalize(&e, origin);
        for row in [2u32, 9, 499_999] {
            let to = CellAddr::new(row, origin.col);
            let copy = e.adjusted(origin, to);
            assert_eq!(normalize(&copy, to), key, "row {row}");
        }
    }

    #[test]
    fn cross_column_copies_differ_only_when_refs_do() {
        // A fill-*right* of a column-relative formula is also one template.
        let origin = at("B1");
        let e = parse("A1+1").unwrap();
        let copy = e.adjusted(origin, at("C1"));
        assert_eq!(normalize(&e, origin), normalize(&copy, at("C1")));
        // But two different formulas never collide.
        assert_ne!(norm("A1+1", "B1"), norm("A1+2", "B1"));
        assert_ne!(norm("A1+1", "B1"), norm("A1+1", "B2")); // offset differs
    }

    #[test]
    fn spec_resolution_round_trips() {
        let origin = at("D7");
        for src in ["A1", "$A1", "A$1", "$A$1", "C7", "Z99"] {
            let r = CellRef::parse(src).unwrap();
            let spec = RefSpec::from_ref(r, origin);
            assert_eq!(spec.resolve(origin), Some(r.addr), "{src}");
        }
    }

    #[test]
    fn off_sheet_resolution_is_none() {
        let spec = RefSpec::from_ref(CellRef::parse("A1").unwrap(), at("B2"));
        // Offset is (-1, -1); resolving at A1 walks off the sheet.
        assert_eq!(spec.resolve(at("A1")), None);
        assert_eq!(spec.resolve(at("B2")), Some(at("A1")));
    }

    #[test]
    fn ranges_and_calls_normalize() {
        assert_eq!(norm("SUM(J1:J100)", "K1"), "SUM(RC[-1]:R[99]C[-1])");
        assert_eq!(norm("SUM($J$1:$J$100)", "K1"), "SUM(R1C10:R100C10)");
        assert_eq!(norm("IF(A1>0,\"hi\",#N/A)", "A2"), "IF(R[-1]C>0,\"hi\",#N/A)");
    }

    #[test]
    fn parenthesization_matches_canonical_printer() {
        assert_eq!(norm("(1+2)*3", "A1"), "(1+2)*3");
        assert_eq!(norm("10-(4-3)", "A1"), "10-(4-3)");
        assert_eq!(norm("2^(3^2)", "A1"), "2^3^2");
    }
}
