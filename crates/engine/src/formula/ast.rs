//! The formula abstract syntax tree.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::addr::{CellAddr, CellRef, Range};
use crate::error::CellError;

/// A reference to a rectangular range, keeping per-corner absolute/relative
/// markers (`$A$1:B10`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeRef {
    pub start: CellRef,
    pub end: CellRef,
}

impl RangeRef {
    /// The concrete range this reference denotes.
    pub fn range(&self) -> Range {
        Range::new(self.start.addr, self.end.addr)
    }

    /// Adjusts both corners for a copy from `from` to `to` (see
    /// [`CellRef::adjusted`]).
    pub fn adjusted(&self, from: CellAddr, to: CellAddr) -> Option<RangeRef> {
        Some(RangeRef { start: self.start.adjusted(from, to)?, end: self.end.adjusted(from, to)? })
    }
}

/// Binary operators, in the dialect shared by the benchmarked systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    /// String concatenation (`&`).
    Concat,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    /// The surface syntax of the operator.
    pub const fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "^",
            BinOp::Concat => "&",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }

    /// Binding power for precedence-climbing. Higher binds tighter.
    /// Matches Excel: comparison < concat < add/sub < mul/div < pow.
    pub const fn precedence(self) -> u8 {
        match self {
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 1,
            BinOp::Concat => 2,
            BinOp::Add | BinOp::Sub => 3,
            BinOp::Mul | BinOp::Div => 4,
            BinOp::Pow => 5,
        }
    }

    /// Whether the operator is right-associative (only `^` in this dialect).
    pub const fn right_assoc(self) -> bool {
        matches!(self, BinOp::Pow)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Prefix negation `-x`.
    Neg,
    /// Prefix plus `+x` (identity, kept for faithful round-tripping).
    Pos,
    /// Postfix percent `x%` (divides by 100).
    Percent,
}

/// A formula expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    Number(f64),
    /// A text literal, shared so evaluation never re-allocates it.
    Text(Arc<str>),
    Bool(bool),
    /// A literal error such as `#N/A` typed into a formula.
    Error(CellError),
    /// A single-cell reference.
    Ref(CellRef),
    /// A rectangular range reference.
    RangeRef(RangeRef),
    Unary(UnaryOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A function call; the name is stored uppercase.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Collects every cell/range this expression references, in syntactic
    /// order. Used by the dependency graph and by the reference-analysis
    /// optimizations.
    pub fn collect_refs(&self, cells: &mut Vec<CellRef>, ranges: &mut Vec<RangeRef>) {
        match self {
            Expr::Ref(r) => cells.push(*r),
            Expr::RangeRef(r) => ranges.push(*r),
            Expr::Unary(_, e) => e.collect_refs(cells, ranges),
            Expr::Binary(_, a, b) => {
                a.collect_refs(cells, ranges);
                b.collect_refs(cells, ranges);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_refs(cells, ranges);
                }
            }
            Expr::Number(_) | Expr::Text(_) | Expr::Bool(_) | Expr::Error(_) => {}
        }
    }

    /// Convenience: all referenced single cells and ranges.
    pub fn refs(&self) -> (Vec<CellRef>, Vec<RangeRef>) {
        let mut cells = Vec::new();
        let mut ranges = Vec::new();
        self.collect_refs(&mut cells, &mut ranges);
        (cells, ranges)
    }

    /// True when the expression contains any absolute reference component.
    /// Sorting whole rows never changes the value of formulae whose
    /// references are all relative (§6, "Detecting what needs
    /// recomputation").
    pub fn has_absolute_refs(&self) -> bool {
        let (cells, ranges) = self.refs();
        cells.iter().any(|c| c.abs_row || c.abs_col)
            || ranges
                .iter()
                .any(|r| r.start.abs_row || r.start.abs_col || r.end.abs_row || r.end.abs_col)
    }

    /// Rewrites every reference for a copy from `from` to `to`; references
    /// that would fall off the sheet become `#REF!` literals.
    pub fn adjusted(&self, from: CellAddr, to: CellAddr) -> Expr {
        match self {
            Expr::Ref(r) => match r.adjusted(from, to) {
                Some(adj) => Expr::Ref(adj),
                None => Expr::Error(CellError::Ref),
            },
            Expr::RangeRef(r) => match r.adjusted(from, to) {
                Some(adj) => Expr::RangeRef(adj),
                None => Expr::Error(CellError::Ref),
            },
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.adjusted(from, to))),
            Expr::Binary(op, a, b) => {
                Expr::Binary(*op, Box::new(a.adjusted(from, to)), Box::new(b.adjusted(from, to)))
            }
            Expr::Call(name, args) => {
                Expr::Call(name.clone(), args.iter().map(|a| a.adjusted(from, to)).collect())
            }
            other => other.clone(),
        }
    }

    /// Number of nodes in the expression tree (used for cost accounting and
    /// tests).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Expr::Unary(_, e) => e.node_count(),
            Expr::Binary(_, a, b) => a.node_count() + b.node_count(),
            Expr::Call(_, args) => args.iter().map(Expr::node_count).sum(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: &str) -> CellRef {
        CellRef::parse(s).unwrap()
    }

    #[test]
    fn collect_refs_walks_tree() {
        // SUM(A1:A3) + B2 * -C4
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Call(
                "SUM".into(),
                vec![Expr::RangeRef(RangeRef { start: r("A1"), end: r("A3") })],
            )),
            Box::new(Expr::Binary(
                BinOp::Mul,
                Box::new(Expr::Ref(r("B2"))),
                Box::new(Expr::Unary(UnaryOp::Neg, Box::new(Expr::Ref(r("C4"))))),
            )),
        );
        let (cells, ranges) = e.refs();
        assert_eq!(cells, vec![r("B2"), r("C4")]);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].range(), Range::parse("A1:A3").unwrap());
        assert_eq!(e.node_count(), 7);
    }

    #[test]
    fn absolute_ref_detection() {
        let rel = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Ref(r("A1"))),
            Box::new(Expr::Ref(r("B1"))),
        );
        assert!(!rel.has_absolute_refs());
        let abs = Expr::Ref(r("$A$1"));
        assert!(abs.has_absolute_refs());
        let half = Expr::RangeRef(RangeRef { start: r("A1"), end: r("A$9") });
        assert!(half.has_absolute_refs());
    }

    #[test]
    fn adjustment_produces_ref_error_off_sheet() {
        let e = Expr::Ref(r("A1"));
        let adj = e.adjusted(CellAddr::new(1, 0), CellAddr::new(0, 0));
        assert_eq!(adj, Expr::Error(CellError::Ref));
    }

    #[test]
    fn precedence_ordering() {
        assert!(BinOp::Pow.precedence() > BinOp::Mul.precedence());
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Concat.precedence());
        assert!(BinOp::Concat.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Pow.right_assoc());
        assert!(!BinOp::Add.right_assoc());
    }
}
