//! The formula lexer. Splits `=COUNTIF(K2:K500000,1)` (without the leading
//! `=`, which the cell layer strips) into tokens.

use crate::error::EngineError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A numeric literal.
    Number(f64),
    /// A double-quoted string literal (quotes removed, `""` unescaped).
    Str(String),
    /// An identifier-like run: function name, `TRUE`/`FALSE`, or a cell
    /// reference candidate such as `$B$7`. Disambiguated by the parser.
    Ident(String),
    /// An error literal such as `#N/A` or `#DIV/0!`.
    ErrorLit(String),
    LParen,
    RParen,
    Comma,
    Colon,
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    Amp,
    Percent,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Lexes a formula body into tokens.
pub fn lex(input: &str) -> Result<Vec<Token>, EngineError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            b')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            b',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            b':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            b'+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            b'/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            b'^' => {
                tokens.push(Token::Caret);
                i += 1;
            }
            b'&' => {
                tokens.push(Token::Amp);
                i += 1;
            }
            b'%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            b'=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            b'"' => {
                let (s, next) = lex_string(input, i)?;
                tokens.push(Token::Str(s));
                i = next;
            }
            b'#' => {
                let (s, next) = lex_error_literal(input, i);
                tokens.push(Token::ErrorLit(s));
                i = next;
            }
            b'0'..=b'9' | b'.' => {
                let (n, next) = lex_number(input, i)?;
                tokens.push(Token::Number(n));
                i = next;
            }
            b'$' | b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'$' | b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'.' => i += 1,
                        _ => break,
                    }
                }
                tokens.push(Token::Ident(input[start..i].to_owned()));
            }
            other => {
                return Err(EngineError::Parse(format!(
                    "unexpected character {:?} at offset {i}",
                    other as char
                )))
            }
        }
    }
    Ok(tokens)
}

/// Lexes a string literal starting at the opening quote; `""` inside a
/// string is an escaped quote. Returns the contents and the index past the
/// closing quote.
fn lex_string(input: &str, start: usize) -> Result<(String, usize), EngineError> {
    let bytes = input.as_bytes();
    debug_assert_eq!(bytes[start], b'"');
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            if bytes.get(i + 1) == Some(&b'"') {
                out.push('"');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Push the full (possibly multi-byte) character.
            let ch = input[i..].chars().next().expect("in-bounds char");
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Err(EngineError::Parse("unterminated string literal".into()))
}

/// Lexes `#N/A`, `#DIV/0!`, `#REF!` and friends: `#` followed by letters,
/// digits, `/`, `?`, `!`.
fn lex_error_literal(input: &str, start: usize) -> (String, usize) {
    let bytes = input.as_bytes();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'/' | b'?' | b'!' => i += 1,
            _ => break,
        }
    }
    (input[start..i].to_owned(), i)
}

/// Lexes a number: digits, optional fraction, optional exponent.
fn lex_number(input: &str, start: usize) -> Result<(f64, usize), EngineError> {
    let bytes = input.as_bytes();
    let mut i = start;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' {
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &input[start..i];
    text.parse::<f64>()
        .map(|n| (n, i))
        .map_err(|_| EngineError::Parse(format!("bad number literal {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_simple_arithmetic() {
        let t = lex("1+2*3").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Number(1.0),
                Token::Plus,
                Token::Number(2.0),
                Token::Star,
                Token::Number(3.0)
            ]
        );
    }

    #[test]
    fn lex_function_call_with_range() {
        let t = lex("SUM(A1:A3)").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("SUM".into()),
                Token::LParen,
                Token::Ident("A1".into()),
                Token::Colon,
                Token::Ident("A3".into()),
                Token::RParen
            ]
        );
    }

    #[test]
    fn lex_comparison_operators() {
        let t = lex("A1<>B1<=C1>=D1").unwrap();
        assert!(t.contains(&Token::Ne));
        assert!(t.contains(&Token::Le));
        assert!(t.contains(&Token::Ge));
    }

    #[test]
    fn lex_strings_with_escapes() {
        let t = lex(r#"COUNTIF(C2,"STORM")"#).unwrap();
        assert!(t.contains(&Token::Str("STORM".into())));
        let t = lex(r#""say ""hi""""#).unwrap();
        assert_eq!(t, vec![Token::Str("say \"hi\"".into())]);
    }

    #[test]
    fn lex_unterminated_string_errors() {
        assert!(lex(r#""oops"#).is_err());
    }

    #[test]
    fn lex_numbers() {
        let t = lex("3.25 1e3 2.5E-2 .5").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Number(3.25),
                Token::Number(1000.0),
                Token::Number(0.025),
                Token::Number(0.5)
            ]
        );
    }

    #[test]
    fn lex_absolute_refs() {
        let t = lex("$B$7+C3").unwrap();
        assert_eq!(t[0], Token::Ident("$B$7".into()));
        assert_eq!(t[2], Token::Ident("C3".into()));
    }

    #[test]
    fn lex_error_literals() {
        let t = lex("#N/A").unwrap();
        assert_eq!(t, vec![Token::ErrorLit("#N/A".into())]);
        let t = lex("#DIV/0!").unwrap();
        assert_eq!(t, vec![Token::ErrorLit("#DIV/0!".into())]);
    }

    #[test]
    fn lex_percent_and_concat() {
        let t = lex(r#"50% & "x""#).unwrap();
        assert_eq!(t, vec![Token::Number(50.0), Token::Percent, Token::Amp, Token::Str("x".into())]);
    }

    #[test]
    fn lex_rejects_unknown_chars() {
        assert!(lex("A1 @ B2").is_err());
    }

    #[test]
    fn lex_unicode_in_strings() {
        let t = lex("\"naïve ☃\"").unwrap();
        assert_eq!(t, vec![Token::Str("naïve ☃".into())]);
    }
}
