//! The spreadsheet value model: dynamically-typed cell values with the
//! coercion and comparison semantics shared by Excel, Calc, and Sheets.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::CellError;

/// A cell value. Numbers are IEEE-754 doubles, as in all three benchmarked
/// systems; dates and percentages are numbers with display styles and do not
/// need distinct runtime representations for the benchmark workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// The empty cell. Treated as 0 in arithmetic and "" in text contexts.
    Empty,
    /// A floating-point number.
    Number(f64),
    /// A text string. Shared via `Arc` so evaluating a text literal (or
    /// copying a text value between cells) is a refcount bump, not a heap
    /// allocation.
    Text(Arc<str>),
    /// A boolean (`TRUE`/`FALSE`).
    Bool(bool),
    /// An in-cell error value.
    Error(CellError),
}

impl Value {
    /// Text constructor convenience.
    pub fn text(s: impl Into<Arc<str>>) -> Self {
        Value::Text(s.into())
    }

    /// True if the value is `Empty`.
    pub fn is_empty(&self) -> bool {
        matches!(self, Value::Empty)
    }

    /// True if the value is an error.
    pub fn is_error(&self) -> bool {
        matches!(self, Value::Error(_))
    }

    /// Returns the contained number if this is `Number`.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Coerces to a number following spreadsheet rules:
    /// numbers pass through, booleans are 1/0, empty is 0, numeric-looking
    /// text parses, other text is a `#VALUE!` error.
    pub fn coerce_number(&self) -> Result<f64, CellError> {
        match self {
            Value::Number(n) => Ok(*n),
            Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            Value::Empty => Ok(0.0),
            Value::Text(s) => parse_number(s).ok_or(CellError::Value),
            Value::Error(e) => Err(*e),
        }
    }

    /// Coerces to a boolean: booleans pass through, numbers are `!= 0`,
    /// `"TRUE"`/`"FALSE"` text parses (case-insensitive), empty is false.
    pub fn coerce_bool(&self) -> Result<bool, CellError> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Number(n) => Ok(*n != 0.0),
            Value::Empty => Ok(false),
            Value::Text(s) => match s.trim().to_ascii_uppercase().as_str() {
                "TRUE" => Ok(true),
                "FALSE" => Ok(false),
                _ => Err(CellError::Value),
            },
            Value::Error(e) => Err(*e),
        }
    }

    /// Coerces to display text (numbers render trim-trailing-zero style,
    /// booleans as `TRUE`/`FALSE`, empty as `""`).
    pub fn coerce_text(&self) -> Result<String, CellError> {
        match self {
            Value::Error(e) => Err(*e),
            other => Ok(other.display()),
        }
    }

    /// The user-visible rendering of the value.
    pub fn display(&self) -> String {
        match self {
            Value::Empty => String::new(),
            Value::Number(n) => format_number(*n),
            Value::Text(s) => s.to_string(),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_owned(),
            Value::Error(e) => e.code().to_owned(),
        }
    }

    /// Spreadsheet comparison semantics used by sort and by the comparison
    /// operators: numbers < text < booleans (Excel's total order); text
    /// compares case-insensitively; empty sorts before everything.
    ///
    /// Returns a total order (NaN is grouped with numbers, ordered last
    /// among them) so it can back a stable sort.
    pub fn sheet_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Empty => 0,
                Value::Number(_) => 1,
                Value::Text(_) => 2,
                Value::Bool(_) => 3,
                Value::Error(_) => 4,
            }
        }
        match (self, other) {
            (Value::Number(a), Value::Number(b)) => {
                a.partial_cmp(b).unwrap_or_else(|| match (a.is_nan(), b.is_nan()) {
                    (true, false) => Ordering::Greater,
                    (false, true) => Ordering::Less,
                    _ => Ordering::Equal,
                })
            }
            // Purely case-insensitive, consistent with `sheet_eq` (values
            // differing only in case compare Equal, as in the real
            // systems' default collation).
            (Value::Text(a), Value::Text(b)) => a.to_lowercase().cmp(&b.to_lowercase()),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Error(a), Value::Error(b)) => a.code().cmp(b.code()),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// Equality as used by `COUNTIF`/`VLOOKUP` exact match and the `=`
    /// operator: numeric equality for numbers, case-insensitive for text,
    /// and a number never equals its textual rendering (matching the
    /// benchmarked systems).
    pub fn sheet_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::Text(a), Value::Text(b)) => a.eq_ignore_ascii_case(b),
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Empty, Value::Empty) => true,
            (Value::Error(a), Value::Error(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display())
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<i32> for Value {
    fn from(n: i32) -> Self {
        Value::Number(f64::from(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Number(f64::from(n))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(Arc::from(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(Arc::from(s))
    }
}

impl From<CellError> for Value {
    fn from(e: CellError) -> Self {
        Value::Error(e)
    }
}

/// Parses text as a spreadsheet number. Unlike a bare `parse::<f64>()`,
/// the non-finite spellings Rust accepts (`"inf"`, `"-inf"`, `"infinity"`,
/// `"NaN"`) and overflowing literals (`"1e999"`) are rejected: the real
/// systems treat those as text or `#VALUE!`, and a grid must never hold a
/// non-finite number (it would poison `sheet_cmp`'s total order and every
/// downstream aggregate).
pub fn parse_number(text: &str) -> Option<f64> {
    text.trim().parse::<f64>().ok().filter(|n| n.is_finite())
}

/// Formats a number like spreadsheets do in the general format: integers
/// without a decimal point, others with up to ~15 significant digits and no
/// trailing zeros.
pub fn format_number(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        let s = format!("{n}");
        s
    }
}

/// A criterion as accepted by `COUNTIF`/`SUMIF`: either a comparison
/// operator with an operand (`">=10"`, `"<>STORM"`) or a bare value matched
/// with `sheet_eq` (with text wildcards `*`/`?`, as in the real systems).
#[derive(Debug, Clone, PartialEq)]
pub enum Criterion {
    Eq(Value),
    Ne(Value),
    Lt(f64),
    Le(f64),
    Gt(f64),
    Ge(f64),
}

impl Criterion {
    /// Parses a criterion argument value. Text values may carry a leading
    /// comparison operator; any other value is an equality criterion.
    pub fn parse(arg: &Value) -> Criterion {
        if let Value::Text(s) = arg {
            let (op, rest): (&str, &str) = if let Some(r) = s.strip_prefix(">=") {
                (">=", r)
            } else if let Some(r) = s.strip_prefix("<=") {
                ("<=", r)
            } else if let Some(r) = s.strip_prefix("<>") {
                ("<>", r)
            } else if let Some(r) = s.strip_prefix('>') {
                (">", r)
            } else if let Some(r) = s.strip_prefix('<') {
                ("<", r)
            } else if let Some(r) = s.strip_prefix('=') {
                ("=", r)
            } else {
                ("", s)
            };
            let num = parse_number(rest);
            return match (op, num) {
                (">=", Some(n)) => Criterion::Ge(n),
                ("<=", Some(n)) => Criterion::Le(n),
                (">", Some(n)) => Criterion::Gt(n),
                ("<", Some(n)) => Criterion::Lt(n),
                ("<>", Some(n)) => Criterion::Ne(Value::Number(n)),
                ("<>", None) => Criterion::Ne(Value::text(rest)),
                ("=", Some(n)) => Criterion::Eq(Value::Number(n)),
                ("=", None) => Criterion::Eq(Value::text(rest)),
                ("", Some(n)) => Criterion::Eq(Value::Number(n)),
                _ => Criterion::Eq(Value::text(rest)),
            };
        }
        Criterion::Eq(arg.clone())
    }

    /// Whether `v` satisfies the criterion.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            Criterion::Eq(target) => match target {
                Value::Text(pat) if pat.contains('*') || pat.contains('?') => match v {
                    Value::Text(s) => wildcard_match(pat, s),
                    _ => false,
                },
                _ => v.sheet_eq(target),
            },
            Criterion::Ne(target) => !v.sheet_eq(target),
            Criterion::Lt(n) => v.as_number().is_some_and(|x| x < *n),
            Criterion::Le(n) => v.as_number().is_some_and(|x| x <= *n),
            Criterion::Gt(n) => v.as_number().is_some_and(|x| x > *n),
            Criterion::Ge(n) => v.as_number().is_some_and(|x| x >= *n),
        }
    }
}

/// Case-insensitive glob match supporting `*` (any run) and `?` (one char),
/// the wildcard dialect of COUNTIF criteria.
pub fn wildcard_match(pattern: &str, text: &str) -> bool {
    fn inner(p: &[char], t: &[char]) -> bool {
        match (p.first(), t.first()) {
            (None, None) => true,
            (Some('*'), _) => inner(&p[1..], t) || (!t.is_empty() && inner(p, &t[1..])),
            (Some('?'), Some(_)) => inner(&p[1..], &t[1..]),
            (Some(pc), Some(tc)) => {
                pc.to_lowercase().eq(tc.to_lowercase()) && inner(&p[1..], &t[1..])
            }
            _ => false,
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    inner(&p, &t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coerce_number_rules() {
        assert_eq!(Value::Number(2.5).coerce_number(), Ok(2.5));
        assert_eq!(Value::Bool(true).coerce_number(), Ok(1.0));
        assert_eq!(Value::Empty.coerce_number(), Ok(0.0));
        assert_eq!(Value::text(" 42 ").coerce_number(), Ok(42.0));
        assert_eq!(Value::text("storm").coerce_number(), Err(CellError::Value));
        assert_eq!(Value::Error(CellError::Na).coerce_number(), Err(CellError::Na));
    }

    #[test]
    fn coerce_number_rejects_non_finite_spellings() {
        // Rust's f64 parser accepts these; spreadsheet coercion must not.
        for s in ["inf", "-inf", "+inf", "infinity", "Infinity", "NaN", "nan", "1e999", "-1E999"] {
            assert_eq!(
                Value::text(s).coerce_number(),
                Err(CellError::Value),
                "{s:?} must not coerce to a number"
            );
        }
        assert_eq!(parse_number(" 1e300 "), Some(1e300));
        assert_eq!(parse_number("inf"), None);
        assert_eq!(parse_number("NaN"), None);
    }

    #[test]
    fn criterion_with_non_finite_operand_is_text_equality() {
        // ">inf" parses as text equality on ">inf"'s remainder, never as a
        // numeric comparison against infinity.
        assert_eq!(Criterion::parse(&Value::text(">inf")), Criterion::Eq(Value::text("inf")));
        assert_eq!(Criterion::parse(&Value::text("NaN")), Criterion::Eq(Value::text("NaN")));
    }

    #[test]
    fn coerce_bool_rules() {
        assert_eq!(Value::Bool(true).coerce_bool(), Ok(true));
        assert_eq!(Value::Number(0.0).coerce_bool(), Ok(false));
        assert_eq!(Value::Number(-3.0).coerce_bool(), Ok(true));
        assert_eq!(Value::text("true").coerce_bool(), Ok(true));
        assert_eq!(Value::text("nope").coerce_bool(), Err(CellError::Value));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Number(3.0).display(), "3");
        assert_eq!(Value::Number(3.25).display(), "3.25");
        assert_eq!(Value::Bool(false).display(), "FALSE");
        assert_eq!(Value::Empty.display(), "");
        assert_eq!(Value::Error(CellError::Div0).display(), "#DIV/0!");
    }

    #[test]
    fn sheet_cmp_type_order() {
        // numbers < text < booleans, empty first
        let mut vals = vec![
            Value::Bool(false),
            Value::text("apple"),
            Value::Number(99.0),
            Value::Empty,
        ];
        vals.sort_by(|a, b| a.sheet_cmp(b));
        assert_eq!(
            vals,
            vec![Value::Empty, Value::Number(99.0), Value::text("apple"), Value::Bool(false)]
        );
    }

    #[test]
    fn sheet_cmp_text_case_insensitive() {
        assert_eq!(Value::text("Apple").sheet_cmp(&Value::text("apple")), Ordering::Equal);
        assert_eq!(Value::text("apple").sheet_cmp(&Value::text("BANANA")), Ordering::Less);
    }

    #[test]
    fn sheet_cmp_nan_total() {
        let nan = Value::Number(f64::NAN);
        assert_eq!(nan.sheet_cmp(&nan), Ordering::Equal);
        assert_eq!(Value::Number(1.0).sheet_cmp(&nan), Ordering::Less);
    }

    #[test]
    fn sheet_eq_semantics() {
        assert!(Value::text("STORM").sheet_eq(&Value::text("storm")));
        assert!(!Value::Number(1.0).sheet_eq(&Value::text("1")));
        assert!(Value::Number(1.0).sheet_eq(&Value::Number(1.0)));
    }

    #[test]
    fn criterion_parse_operators() {
        assert_eq!(Criterion::parse(&Value::text(">=10")), Criterion::Ge(10.0));
        assert_eq!(Criterion::parse(&Value::text("<5.5")), Criterion::Lt(5.5));
        assert_eq!(Criterion::parse(&Value::text("<>STORM")), Criterion::Ne(Value::text("STORM")));
        assert_eq!(Criterion::parse(&Value::Number(1.0)), Criterion::Eq(Value::Number(1.0)));
    }

    #[test]
    fn criterion_matching() {
        let c = Criterion::parse(&Value::text(">=10"));
        assert!(c.matches(&Value::Number(10.0)));
        assert!(!c.matches(&Value::Number(9.9)));
        assert!(!c.matches(&Value::text("10"))); // comparisons only match numbers
        let eq = Criterion::parse(&Value::text("STORM"));
        assert!(eq.matches(&Value::text("storm")));
        assert!(!eq.matches(&Value::text("storms")));
    }

    #[test]
    fn criterion_wildcards() {
        let c = Criterion::parse(&Value::text("ST*M"));
        assert!(c.matches(&Value::text("STORM")));
        assert!(c.matches(&Value::text("stm")));
        assert!(!c.matches(&Value::text("storms")));
        let q = Criterion::parse(&Value::text("h?il"));
        assert!(q.matches(&Value::text("HAIL")));
        assert!(!q.matches(&Value::text("hail!")));
    }

    #[test]
    fn wildcard_edge_cases() {
        assert!(wildcard_match("*", ""));
        assert!(wildcard_match("**a", "ba"));
        assert!(!wildcard_match("?", ""));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(1_000_000.0), "1000000");
        assert_eq!(format_number(0.5), "0.5");
        assert_eq!(format_number(-2.0), "-2");
    }
}
