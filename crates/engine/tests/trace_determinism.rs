//! Determinism guarantee of the tracing subsystem: a traced recalculation
//! produces the same span tree and the same meter `Counts` whether it runs
//! sequentially or across worker threads. Worker chunks are merged at level
//! barriers in chunk order, so the tree is a pure function of the plan.
//!
//! Everything lives in one `#[test]` because the trace switch and the
//! `RECALC_PARALLELISM` override are process-global.

use ssbench_engine::prelude::*;

/// A wide three-level formula DAG: `n` input rows, a per-row square, a
/// windowed SUM per row, and one grand total — enough fan-out that every
/// level splits into multiple worker chunks.
fn wide_dag_sheet(n: u32, opts: RecalcOptions) -> Sheet {
    let mut s = Sheet::new();
    s.set_recalc_options(opts);
    for i in 0..n {
        s.set_value(CellAddr::new(i, 0), i64::from(i % 97));
        s.set_formula_str(CellAddr::new(i, 1), &format!("=A{r}*A{r}", r = i + 1)).unwrap();
        let lo = (i / 10) * 10 + 1;
        s.set_formula_str(CellAddr::new(i, 2), &format!("=SUM(B{lo}:B{})", i + 1)).unwrap();
    }
    s.set_formula_str(CellAddr::new(0, 3), &format!("=SUM(C1:C{n})")).unwrap();
    s
}

/// Recalculates a fresh DAG under `opts` with tracing on, returning the
/// span-tree signatures, the meter snapshot, and every computed value.
fn traced_run(opts: RecalcOptions) -> (Vec<String>, Counts, Vec<Value>) {
    const N: u32 = 600;
    trace::clear();
    let mut sheet = wide_dag_sheet(N, opts);
    recalc::recalc_all(&mut sheet);
    let counts = sheet.meter().snapshot();
    let roots = trace::drain();
    assert!(!roots.is_empty(), "tracing enabled, so recalc must emit spans");
    let signatures = roots.iter().map(|r| r.signature()).collect();
    let mut values = Vec::new();
    for row in 0..N {
        for col in 1..3 {
            values.push(sheet.value(CellAddr::new(row, col)));
        }
    }
    values.push(sheet.value(CellAddr::new(0, 3)));
    (signatures, counts, values)
}

#[test]
fn span_trees_and_counts_identical_across_thread_counts() {
    // The env override is what a traced benchmark run under
    // RECALC_PARALLELISM=4 would see; assert it reaches the defaults.
    std::env::set_var("RECALC_PARALLELISM", "4");
    assert_eq!(RecalcOptions::default().parallelism, 4, "env override ignored");

    trace::enable(trace::DEFAULT_CAPACITY);
    let sequential = traced_run(RecalcOptions::sequential());
    // Low threshold forces the parallel path (600-wide levels, 4 workers).
    let parallel =
        traced_run(RecalcOptions::builder().parallelism(4).threshold(1).build());
    trace::disable();
    trace::clear();

    assert_eq!(sequential.2, parallel.2, "computed values diverged");
    assert_eq!(sequential.1, parallel.1, "meter Counts deltas diverged");
    assert_eq!(
        sequential.0, parallel.0,
        "span-tree signatures must be bit-identical across thread counts"
    );
}
