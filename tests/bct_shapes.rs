//! Integration tests over the BCT experiments: the paper's qualitative
//! findings (takeaway boxes of §4) must hold in the reproduced figures at
//! reduced scale. Scale shrinks sizes but not the cost model, so shapes
//! and orderings survive; absolute violation points are validated
//! separately in `table2_reproduction.rs`.

use ssbench::harness::bct;
use ssbench::harness::RunConfig;

fn cfg(scale: f64) -> RunConfig {
    let mut cfg = RunConfig::quick();
    cfg.scale = scale;
    cfg
}

/// §4.1 takeaway: desktop opens grow with size and formulae make opening
/// slower for every system; Sheets' Value-only open is flat.
#[test]
fn open_takeaway() {
    let r = bct::fig2_open(&cfg(0.05));
    for sys in ["Excel", "Calc", "Google Sheets"] {
        let f = r.series(&format!("{sys} (F)")).unwrap().last().unwrap();
        let v = r.series(&format!("{sys} (V)")).unwrap().last().unwrap();
        assert!(f.ms > v.ms, "{sys}: F open ({}) slower than V ({})", f.ms, v.ms);
    }
    let excel_v = r.series("Excel (V)").unwrap();
    assert!(excel_v.points.last().unwrap().ms > excel_v.points[0].ms * 2.0);
}

/// §4.2.1 takeaway: sort recomputation makes Formula-value much worse;
/// every system recalculates.
#[test]
fn sort_takeaway() {
    let r = bct::fig3_sort(&cfg(0.02));
    for sys in ["Excel", "Calc", "Google Sheets"] {
        let f = r.series(&format!("{sys} (F)")).unwrap().last().unwrap();
        let v_series = r.series(&format!("{sys} (V)")).unwrap();
        let v = v_series.points.iter().find(|p| p.x == f.x).unwrap();
        assert!(f.ms > v.ms, "{sys}: sort F ({}) > V ({})", f.ms, v.ms);
    }
}

/// §4.2.2 takeaway: Excel is fastest at conditional formatting and skips
/// recomputation; Calc and Sheets pay for it on Formula-value.
#[test]
fn conditional_formatting_takeaway() {
    let r = bct::fig4_cond_format(&cfg(0.05));
    let e = r.series("Excel (V)").unwrap().last().unwrap();
    let c = r.series("Calc (V)").unwrap();
    let c_at = c.points.iter().find(|p| p.x == e.x).unwrap();
    assert!(e.ms < c_at.ms, "Excel fastest: {} < {}", e.ms, c_at.ms);
    // Calc and Sheets recompute on format. At this scale Sheets' quota
    // caps its sweep at 4.5k rows, where the recomputation term is small
    // relative to its fixed cost, so the margin differs per system.
    for (sys, margin) in [("Calc", 1.5), ("Google Sheets", 1.05)] {
        let f = r.series(&format!("{sys} (F)")).unwrap().last().unwrap();
        let v_series = r.series(&format!("{sys} (V)")).unwrap();
        let v = v_series.points.iter().find(|p| p.x == f.x).unwrap();
        assert!(
            f.ms > v.ms * margin,
            "{sys} recomputes on format: {} vs {}",
            f.ms,
            v.ms
        );
    }
}

/// §4.3.1 takeaway: Excel wins Value-only filtering but goes superlinear
/// on Formula-value.
#[test]
fn filter_takeaway() {
    let r = bct::fig5_filter(&cfg(0.1));
    let ev = r.series("Excel (V)").unwrap().last().unwrap();
    let cv = r.series("Calc (V)").unwrap();
    let cv_at = cv.points.iter().find(|p| p.x == ev.x).unwrap();
    assert!(ev.ms < cv_at.ms, "Excel fastest on V");
    let ef = r.series("Excel (F)").unwrap().last().unwrap();
    assert!(ef.ms > ev.ms * 2.0, "Excel F filter much slower (recalculation)");
}

/// §4.3.2 takeaway: Calc accommodates far larger pivots and ignores
/// embedded formulae.
#[test]
fn pivot_takeaway() {
    let r = bct::fig6_pivot(&cfg(0.1));
    let c = r.series("Calc (V)").unwrap().last().unwrap();
    let e = r.series("Excel (V)").unwrap().last().unwrap();
    assert_eq!(c.x, e.x);
    assert!(c.ms < e.ms, "Calc pivots faster at scale: {} < {}", c.ms, e.ms);
    let cf = r.series("Calc (F)").unwrap().last().unwrap();
    assert!((cf.ms - c.ms).abs() / c.ms < 0.05, "Calc unaffected by formulae");
}

/// §4.3.3 takeaway: aggregate times scale linearly; Excel < Calc <
/// Sheets.
#[test]
fn countif_takeaway() {
    let r = bct::fig7_countif(&cfg(0.1));
    let e = r.series("Excel (V)").unwrap();
    // Linearity: time ratio ≈ size ratio between two large sizes.
    let a = e.points[e.points.len() - 5];
    let b = *e.points.last().unwrap();
    let time_ratio = b.ms / a.ms;
    let size_ratio = f64::from(b.x) / f64::from(a.x);
    assert!(
        (time_ratio / size_ratio - 1.0).abs() < 0.25,
        "linear: ×{time_ratio:.2} vs ×{size_ratio:.2}"
    );
}

/// §4.3.4 takeaway: Calc and Sheets scan everything regardless of the
/// match mode; Excel's approximate match is near-constant.
#[test]
fn vlookup_takeaway() {
    let r = bct::fig8_vlookup(&cfg(0.05));
    let excel_approx = r.series("Excel Sorted-TRUE").unwrap();
    let spread = excel_approx.points.last().unwrap().ms / excel_approx.points[0].ms;
    assert!(spread < 1.5, "Excel approximate lookup ~constant, spread {spread:.2}");
    let calc = r.series("Calc Sorted-FALSE").unwrap().last().unwrap();
    let excel = r.series("Excel Sorted-FALSE").unwrap().last().unwrap();
    assert!(calc.ms > excel.ms * 5.0, "Calc scans everything: {} vs {}", calc.ms, excel.ms);
}

/// The lookup result itself is correct and identical across systems: the
/// state of the row whose key is X.
#[test]
fn vlookup_results_agree_across_systems() {
    use ssbench::systems::{all_kinds, SimSystem};
    use ssbench::workload::{build_sheet, Variant};
    let rows = 5_000;
    let mut results = Vec::new();
    for kind in all_kinds() {
        let sys = SimSystem::new(kind);
        let mut sheet = build_sheet(rows, Variant::ValueOnly);
        let (v, _) = sys.vlookup(&mut sheet, 3_000.0, rows, 1, false);
        results.push(v);
    }
    for v in &results[1..] {
        assert_eq!(&results[0], v);
    }
    assert!(matches!(results[0], ssbench::engine::value::Value::Text(_)));
}
