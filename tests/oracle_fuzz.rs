//! Bounded in-test fuzz smoke: a fixed-seed generated sequence replayed
//! across the full 96-configuration matrix. Deterministic (fixed seed,
//! shimmed RNG), so CI cannot flake — the long random exploration lives
//! in the `fuzz` binary, exercised by `scripts/check.sh`.

use ssbench::harness::oracle::{check_script, gen};

#[test]
fn fixed_seed_sequence_is_configuration_independent() {
    let script = gen::generate(0xF00D, 64, 60);
    // The grammar must actually exercise the interesting ops at this
    // length, or the oracle is vacuous.
    let names: Vec<&str> = script.ops.iter().map(|op| variant_name(op)).collect();
    for expected in ["Set", "Sort", "Filter"] {
        assert!(
            names.contains(&expected),
            "60-op stream never produced a {expected} op: {names:?}"
        );
    }
    if let Err(f) = check_script(&script) {
        panic!("oracle divergence on a healthy engine: {f}");
    }
}

fn variant_name(op: &ssbench::harness::oracle::ScriptOp) -> &'static str {
    use ssbench::harness::oracle::ScriptOp::*;
    match op {
        Set { .. } => "Set",
        Sort { .. } => "Sort",
        Filter { .. } => "Filter",
        ClearFilter => "ClearFilter",
        CondFormat { .. } => "CondFormat",
        FindReplace { .. } => "FindReplace",
        CopyPaste { .. } => "CopyPaste",
        Pivot { .. } => "Pivot",
        InsertRows { .. } => "InsertRows",
        DeleteRows { .. } => "DeleteRows",
        InsertCols { .. } => "InsertCols",
        DeleteCols { .. } => "DeleteCols",
        Recalc => "Recalc",
    }
}
