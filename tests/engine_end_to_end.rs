//! End-to-end engine scenarios: realistic multi-feature workflows a
//! downstream adopter would run, combining formulas, named ranges,
//! structural edits, operations, and persistence.

use ssbench::engine::io;
use ssbench::engine::prelude::*;
use ssbench::engine::workbook::WorkbookData;

fn a(s: &str) -> CellAddr {
    CellAddr::parse(s).unwrap()
}

/// A small sales ledger used by several scenarios.
fn ledger() -> Sheet {
    let mut s = Sheet::new();
    for (i, (region, product, units, price)) in [
        ("east", "apple", 12, 1.5),
        ("west", "apple", 7, 1.5),
        ("east", "pear", 4, 2.0),
        ("south", "apple", 9, 1.4),
        ("west", "pear", 11, 2.1),
        ("east", "apple", 3, 1.6),
    ]
    .iter()
    .enumerate()
    {
        let r = i as u32;
        s.set_value(CellAddr::new(r, 0), *region);
        s.set_value(CellAddr::new(r, 1), *product);
        s.set_value(CellAddr::new(r, 2), *units as i64);
        s.set_value(CellAddr::new(r, 3), *price);
        s.set_formula_str(CellAddr::new(r, 4), &format!("=C{n}*D{n}", n = r + 1)).unwrap();
    }
    recalc::recalc_all(&mut s);
    s
}

#[test]
fn ledger_analysis_with_names_and_multi_criteria() {
    let mut s = ledger();
    s.define_name("Regions", Range::parse("A1:A6").unwrap()).unwrap();
    s.define_name("Products", Range::parse("B1:B6").unwrap()).unwrap();
    s.define_name("Revenue", Range::parse("E1:E6").unwrap()).unwrap();
    let east_apple = s
        .eval_str("=SUMIFS(Revenue,Regions,\"east\",Products,\"apple\")")
        .unwrap();
    assert_eq!(east_apple, Value::Number(12.0 * 1.5 + 3.0 * 1.6));
    let count = s.eval_str("=COUNTIFS(Regions,\"west\",Products,\"pear\")").unwrap();
    assert_eq!(count, Value::Number(1.0));
    let top = s.eval_str("=LARGE(Revenue,1)").unwrap();
    assert_eq!(top, Value::Number(23.1)); // west pear 11×2.1
}

#[test]
fn structural_edit_then_sort_then_totals_stay_consistent() {
    let mut s = ledger();
    s.set_formula_str(a("G1"), "=SUM(E1:E6)").unwrap();
    recalc::recalc_all(&mut s);
    let total_before = s.value(a("G1"));

    // Insert a new row in the middle and fill it in.
    insert_rows(&mut s, 3, 1);
    assert_eq!(s.input_text(a("G1")), "=SUM(E1:E7)");
    s.set_value(a("A4"), "north");
    s.set_value(a("B4"), "plum");
    s.set_value(a("C4"), 2);
    s.set_value(a("D4"), 3.0);
    s.set_formula_str(a("E4"), "=C4*D4").unwrap();
    recalc::recalc_all(&mut s);
    assert_eq!(
        s.value(a("G1")),
        Value::Number(total_before.as_number().unwrap() + 6.0)
    );

    // Sort by units; per-row revenue formulas move with their rows and
    // stay correct.
    sort_rows(&mut s, &[SortKey::desc(2)]);
    recalc::recalc_all(&mut s);
    for r in 0..7u32 {
        let units = s.value(CellAddr::new(r, 2)).as_number().unwrap();
        let price = s.value(CellAddr::new(r, 3)).as_number().unwrap();
        let revenue = s.value(CellAddr::new(r, 4)).as_number().unwrap();
        assert!((revenue - units * price).abs() < 1e-9, "row {r}");
    }
    // The grand total is invariant under sorting.
    assert_eq!(
        s.value(a("G1")).as_number().unwrap(),
        total_before.as_number().unwrap() + 6.0
    );
}

#[test]
fn filter_pivot_and_clear_interplay() {
    let mut s = ledger();
    let crit = Criterion::parse(&Value::text("east"));
    let visible = filter_rows(&mut s, 0, &crit);
    assert_eq!(visible, 3);
    // Pivot ignores the filter (as in the real systems: pivots read source
    // data, not the view).
    let p = pivot(&s, 0, 2, PivotAgg::Sum);
    assert_eq!(p.value_for(&Value::text("west")), Some(18.0));
    clear_filter(&mut s);
    assert_eq!(s.visible_rows(), 6);
}

#[test]
fn workbook_save_load_preserves_cross_feature_state() {
    let mut data_sheet = ledger();
    conditional_format(
        &mut data_sheet,
        Range::parse("C1:C6").unwrap(),
        &Criterion::parse(&Value::text(">=9")),
        Color::GREEN,
    );
    let mut wb = Workbook::with_sheet(data_sheet);
    let mut summary = Sheet::new();
    summary.set_formula_str(a("A1"), "=1+1").unwrap();
    wb.insert("Summary", summary).unwrap();

    let saved = wb.to_data();
    let json = serde_json::to_string(&saved).unwrap();
    let loaded: WorkbookData = serde_json::from_str(&json).unwrap();
    let restored = Workbook::from_data(&loaded).unwrap();

    let sheet = restored.get("Sheet1").unwrap();
    // Values and formulas round-trip (styles live outside SheetData — the
    // document model matches the paper's file formats, which the harness
    // re-applies formatting to).
    assert_eq!(sheet.value(a("E5")), Value::Number(23.1));
    assert!(sheet.is_formula(a("E5")));
    assert_eq!(restored.get("Summary").unwrap().value(a("A1")), Value::Number(2.0));
}

#[test]
fn csv_export_import_round_trip_preserves_analysis() {
    let s = ledger();
    let csv = io::to_csv(&io::save(&s));
    let back = io::open(&io::from_csv(&csv).unwrap(), Layout::RowMajor).unwrap();
    let mut back = back;
    recalc::open_recalc(&mut back);
    assert_eq!(
        back.eval_str("=SUM(E1:E6)").unwrap(),
        s.eval_str("=SUM(E1:E6)").unwrap()
    );
}

#[test]
fn dates_and_lookups_compose() {
    let mut s = Sheet::new();
    // A schedule: serial dates and an XLOOKUP over them.
    for (i, day) in [1, 8, 15, 22].iter().enumerate() {
        s.set_formula_str(
            CellAddr::new(i as u32, 0),
            &format!("=DATE(2021,3,{day})"),
        )
        .unwrap();
        s.set_value(CellAddr::new(i as u32, 1), format!("week{}", i + 1));
    }
    recalc::recalc_all(&mut s);
    let v = s
        .eval_str("=XLOOKUP(DATE(2021,3,15),A1:A4,B1:B4)")
        .unwrap();
    assert_eq!(v, Value::text("week3"));
    // Approximate: a mid-week date falls back to the week's start.
    let v = s.eval_str("=XLOOKUP(DATE(2021,3,17),A1:A4,B1:B4,\"?\",-1)").unwrap();
    assert_eq!(v, Value::text("week3"));
    assert_eq!(s.eval_str("=WEEKDAY(A1)").unwrap(), Value::Number(2.0)); // 2021-03-01 Monday
}

#[test]
fn progressive_recalc_over_a_real_workload() {
    use ssbench::optimized::ProgressiveRecalc;
    use ssbench::workload::{build_sheet, Variant};
    let mut sheet = build_sheet(2_000, Variant::FormulaValue);
    // Invalidate everything by rebuilding caches progressively.
    let mut prog = ProgressiveRecalc::plan_full(&sheet, 0..40);
    let mut steps = 0;
    while prog.step(&mut sheet, 500) > 0 {
        steps += 1;
        assert!(prog.progress() <= 1.0);
    }
    assert!(steps >= 2_000 * 7 / 500);
    // Every formula cache is correct afterwards.
    let truth = build_sheet(2_000, Variant::FormulaValue);
    for r in 0..2_000u32 {
        for c in 10..17u32 {
            let addr = CellAddr::new(r, c);
            assert_eq!(sheet.value(addr), truth.value(addr), "cell {addr}");
        }
    }
}
