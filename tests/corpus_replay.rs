//! Replays every corpus reproducer under `tests/corpus/` through the
//! differential oracle. Each file is a shrunk, once-failing script (see
//! DESIGN.md §9); this suite makes those failures permanent regressions.

use std::path::PathBuf;

use ssbench::harness::oracle::{check_script, Script};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn every_corpus_script_passes_the_oracle() {
    let scripts = Script::load_dir(&corpus_dir()).expect("corpus directory loads");
    assert!(!scripts.is_empty(), "corpus must not be empty");
    let mut failures = Vec::new();
    for (path, script) in &scripts {
        assert!(
            script.ops.len() <= 10,
            "{}: corpus reproducers must stay minimal (≤ 10 ops), got {}",
            path.display(),
            script.ops.len()
        );
        if let Err(f) = check_script(script) {
            failures.push(format!("{}: {f}", path.display()));
        }
    }
    assert!(failures.is_empty(), "corpus regressions:\n{}", failures.join("\n"));
}

#[test]
fn corpus_files_round_trip_through_the_script_codec() {
    for (path, script) in Script::load_dir(&corpus_dir()).expect("corpus directory loads") {
        let back = Script::from_json(&script.to_json())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(back, script, "{} round-trips", path.display());
    }
}
