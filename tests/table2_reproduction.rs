//! Validates the reproduced Table 2 against the paper's published values.
//!
//! Violations happen at *absolute* row counts (the cost model depends on
//! actual data sizes, not on the sweep grid), so a sweep at scale 0.2
//! must detect each crossing at the same absolute place — just reported
//! on the finer scaled grid. The default test checks exactly that; the
//! `--ignored` test runs the paper's full grid (minutes, release).

use ssbench::harness::table2::{self, Table2Cell};
use ssbench::harness::{Protocol, RunConfig};
use ssbench::systems::{ScalabilityLimit, SystemKind};
use ssbench::workload::Variant;

/// The paper's three systems — Table 2 as published covers only these;
/// the reproduced table may carry extra registered columns (Optimized).
const PAPER_TRIO: [SystemKind; 3] = [SystemKind::Excel, SystemKind::Calc, SystemKind::GSheets];

/// The paper's Table 2 as violation row counts (None = never violated).
/// Two cells knowingly deviate from the paper's self-inconsistent values
/// (see EXPERIMENTS.md): Sheets sort/F (paper 10k; physically it cannot
/// exceed V's 6k) and Calc pivot/V (paper 33%; ours is symmetric at 34%).
fn paper_violation_rows(op: &str, variant: Variant, sys: SystemKind) -> Option<Option<u32>> {
    use SystemKind::*;
    use Variant::*;
    let v = match (op, variant, sys) {
        ("Open", _, Excel) => Some(6_000),
        ("Open", _, Calc | GSheets) => Some(150),
        ("Sort", FormulaValue, Excel) => Some(10_000),
        ("Sort", FormulaValue, Calc) => Some(6_000),
        ("Sort", FormulaValue, GSheets) => Some(6_000), // * paper: 10k
        ("Sort", ValueOnly, Excel) => Some(70_000),
        ("Sort", ValueOnly, Calc) => Some(10_000),
        ("Sort", ValueOnly, GSheets) => Some(6_000),
        ("Conditional Formatting", FormulaValue, Excel) => None,
        ("Conditional Formatting", FormulaValue, Calc) => Some(80_000),
        ("Conditional Formatting", FormulaValue, GSheets) => Some(50_000),
        ("Conditional Formatting", ValueOnly, _) => None,
        ("Filter", FormulaValue, Excel) => Some(40_000),
        ("Filter", FormulaValue, Calc) => Some(120_000),
        ("Filter", FormulaValue, GSheets) => Some(10_000),
        ("Filter", ValueOnly, Excel) => None,
        ("Filter", ValueOnly, Calc) => Some(200_000),
        ("Filter", ValueOnly, GSheets) => Some(20_000),
        ("Pivot Table", FormulaValue, Excel) => Some(50_000),
        ("Pivot Table", FormulaValue, Calc) => Some(340_000),
        ("Pivot Table", FormulaValue, GSheets) => Some(10_000),
        ("Pivot Table", ValueOnly, Excel) => Some(50_000),
        ("Pivot Table", ValueOnly, Calc) => Some(340_000), // * paper: 330k
        ("Pivot Table", ValueOnly, GSheets) => Some(20_000),
        ("COUNTIF", FormulaValue, Excel) => None,
        ("COUNTIF", FormulaValue, Calc) => Some(110_000),
        ("COUNTIF", FormulaValue, GSheets) => Some(10_000),
        ("COUNTIF", ValueOnly, Excel | Calc) => None,
        ("COUNTIF", ValueOnly, GSheets) => Some(10_000),
        ("VLOOKUP", FormulaValue, _) => return None, // not run
        ("VLOOKUP", ValueOnly, Excel) => None,
        ("VLOOKUP", ValueOnly, Calc) => Some(50_000),
        ("VLOOKUP", ValueOnly, GSheets) => Some(70_000),
        _ => unreachable!("unknown cell {op}/{variant:?}/{sys:?}"),
    };
    Some(v)
}

/// Converts a Table-2 percentage back to the violation row count.
fn pct_to_rows(sys: SystemKind, pct: f64) -> u32 {
    match sys.scalability_limit() {
        ScalabilityLimit::Rows(limit) => (pct / 100.0 * limit as f64).round() as u32,
        ScalabilityLimit::Cells(limit) => (pct / 100.0 * limit as f64 / 17.0).round() as u32,
    }
}

/// The largest paper-grid point strictly below `g` (0 when `g` is the
/// first point).
fn prev_paper_grid(g: u32) -> u32 {
    let mut prev = 0;
    for s in ssbench::workload::sample_sizes() {
        if s >= g {
            break;
        }
        prev = s;
    }
    prev
}

/// The smallest point of `grid` that is ≥ `g` (None when off the end).
fn ceil_on_grid(grid: &[u32], g: u32) -> Option<u32> {
    grid.iter().copied().find(|&s| s >= g)
}

/// The operation class each Table-2 row measures (for quota lookups).
fn op_class(op: &str) -> ssbench::systems::OpClass {
    use ssbench::systems::OpClass::*;
    match op {
        "Open" => Open,
        "Sort" => Sort,
        "Conditional Formatting" => CondFormat,
        "Filter" => Filter,
        "Pivot Table" => Pivot,
        "COUNTIF" => Aggregate,
        "VLOOKUP" => Lookup,
        other => unreachable!("unknown op {other}"),
    }
}

/// Validates a reproduced table computed with `cfg` against the paper
/// expectations, accounting for the sweep grid (including per-system
/// quota caps) in use.
fn check_against_paper(table: &table2::Table2, cfg: &RunConfig) {
    let mut mismatches = Vec::new();
    for (op, _) in table2::TABLE2_OPS {
        for variant in [Variant::FormulaValue, Variant::ValueOnly] {
            for sys in PAPER_TRIO {
                let Some(expected) = paper_violation_rows(op, variant, sys) else { continue };
                let cell = table.cell(op, variant, sys).expect("cell exists");
                let quota = ssbench::systems::SimSystem::new(sys).max_rows(op_class(op));
                let grid = cfg.sizes(quota);
                let sweep_max = *grid.last().unwrap();
                match (expected, cell) {
                    (None, Table2Cell::NeverViolated) => {}
                    (Some(g), Table2Cell::NeverViolated) => {
                        // Acceptable when the crossing may lie beyond this
                        // sweep's reach: the paper only brackets it in
                        // (prev_paper_grid(g), g], so a sweep that stops
                        // below g proves nothing either way.
                        if g <= sweep_max {
                            mismatches.push(format!(
                                "{op}/{}/{}: expected violation ≈{g}, saw none up to {sweep_max}",
                                variant.label(),
                                sys.code()
                            ));
                        }
                    }
                    (Some(g), Table2Cell::Pct(pct)) => {
                        let measured = pct_to_rows(sys, pct);
                        // The paper says the true crossing is in
                        // (prev_paper_grid(g), g]; our sweep reports the
                        // first point of its own grid ≥ the true
                        // crossing, so the acceptable window is
                        // (prev_paper_grid(g), ceil_grid(g)].
                        let lo = prev_paper_grid(g);
                        let hi = ceil_on_grid(&grid, g).unwrap_or(sweep_max);
                        if !(measured > lo && measured <= hi) {
                            mismatches.push(format!(
                                "{op}/{}/{}: expected crossing in ({lo}, {hi}], measured {measured}",
                                variant.label(),
                                sys.code()
                            ));
                        }
                    }
                    (exp, got) => mismatches.push(format!(
                        "{op}/{}/{}: expected {exp:?}, got {got:?}",
                        variant.label(),
                        sys.code()
                    )),
                }
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "Table 2 mismatches (scale {}):\n{}\nreproduced:\n{table}",
        cfg.scale,
        mismatches.join("\n")
    );
}

/// Scaled sweep: every reachable violation lands at the paper's absolute
/// crossing.
#[test]
fn table2_crossings_at_reduced_scale() {
    let mut cfg = RunConfig::full();
    cfg.scale = 0.2;
    cfg.protocol = Protocol { trials: 3, trim: 1 };
    cfg.stop_after_violation = Some(1);
    let (table, _) = table2::compute(&cfg);
    check_against_paper(&table, &cfg);
}

/// Full-scale Table-2 reproduction — the paper's exact grid. Run with
/// `cargo test --release --test table2_reproduction -- --ignored`.
#[test]
#[ignore = "full paper-scale sweep; takes minutes — run with --ignored in release"]
fn table2_full_scale() {
    let mut cfg = RunConfig::full();
    cfg.stop_after_violation = Some(1);
    let (table, _) = table2::compute(&cfg);
    check_against_paper(&table, &cfg);
}
