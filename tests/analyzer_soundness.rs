//! Soundness properties of the static analyzer (DESIGN.md §11).
//!
//! The abstract interpreter claims two over-approximations per template:
//! the value kinds evaluation can produce (`Analysis::ty`) and the cells
//! it can read (`Analysis::reads`). Both are checked here dynamically, on
//! random expression trees and in both grid layouts, by evaluating through
//! a [`RecordingSource`] that logs every cell actually read. The dep-graph
//! coverage proof (`analyze::check_sheet`) is then run over whole random
//! sheets built from the same trees.

use proptest::prelude::*;

use ssbench::engine::analyze::RecordingSource;
use ssbench::engine::eval::evaluate;
use ssbench::engine::formula::{BinOp, Expr, RangeRef, UnaryOp};
use ssbench::engine::prelude::*;

// ---------------------------------------------------------------------
// Expression generation
// ---------------------------------------------------------------------

fn arb_cellref() -> impl Strategy<Value = CellRef> {
    (0u32..200, 0u32..26, any::<bool>(), any::<bool>()).prop_map(|(row, col, ar, ac)| CellRef {
        addr: CellAddr::new(row, col),
        abs_row: ar,
        abs_col: ac,
    })
}

fn arb_rangeref() -> impl Strategy<Value = RangeRef> {
    (arb_cellref(), arb_cellref()).prop_map(|(a, b)| {
        let (start, end) = if (a.addr.row, a.addr.col) <= (b.addr.row, b.addr.col) {
            (a, b)
        } else {
            (b, a)
        };
        RangeRef { start, end }
    })
}

fn arb_leaf() -> impl Strategy<Value = Expr> {
    use ssbench::engine::error::CellError;
    prop_oneof![
        (-1.0e6f64..1.0e6).prop_map(Expr::Number),
        "[a-z0-9 ]{0,8}".prop_map(|s| Expr::Text(s.into())),
        any::<bool>().prop_map(Expr::Bool),
        prop_oneof![Just(CellError::Div0), Just(CellError::Value), Just(CellError::Na)]
            .prop_map(Expr::Error),
        arb_cellref().prop_map(Expr::Ref),
        arb_rangeref().prop_map(Expr::RangeRef),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Pow),
        Just(BinOp::Concat),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

/// Random expressions biased toward the constructs the analyzer models
/// specially: branches (whose type is the join of the arms), volatile NOW,
/// the dynamic-read builtins (OFFSET, 3-argument SUMIF) that force an
/// unbounded read-set, aggregates over ranges, and unknown names.
fn arb_expr() -> impl Strategy<Value = Expr> {
    arb_leaf().prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop())
                .prop_map(|(a, b, op)| Expr::Binary(op, Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| Expr::Unary(UnaryOp::Neg, Box::new(e))),
            inner.clone().prop_map(|e| Expr::Unary(UnaryOp::Percent, Box::new(e))),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Expr::Call("IF".into(), vec![c, t, e])),
            (inner.clone(), inner.clone())
                .prop_map(|(c, t)| Expr::Call("IF".into(), vec![c, t])),
            (inner.clone(), inner.clone())
                .prop_map(|(v, f)| Expr::Call("IFERROR".into(), vec![v, f])),
            prop::collection::vec(inner.clone(), 0..4)
                .prop_map(|args| Expr::Call("AND".into(), args)),
            prop::collection::vec(inner.clone(), 1..4)
                .prop_map(|args| Expr::Call("SUM".into(), args)),
            (arb_rangeref(), inner.clone())
                .prop_map(|(r, c)| Expr::Call("COUNTIF".into(), vec![Expr::RangeRef(r), c])),
            (arb_rangeref(), inner.clone(), arb_rangeref()).prop_map(|(r, c, s)| Expr::Call(
                "SUMIF".into(),
                vec![Expr::RangeRef(r), c, Expr::RangeRef(s)]
            )),
            (arb_cellref(), inner.clone(), inner.clone()).prop_map(|(base, r, c)| Expr::Call(
                "OFFSET".into(),
                vec![Expr::Ref(base), r, c]
            )),
            Just(Expr::Call("NOW".into(), vec![])),
            inner.prop_map(|e| Expr::Call("NOSUCHFN".into(), vec![e])),
        ]
    })
}

// ---------------------------------------------------------------------
// Fixture
// ---------------------------------------------------------------------

/// A mixed data fixture in the top-left corner: numbers, text, booleans,
/// and formula cells (one of which evaluates to `#DIV/0!`). References
/// outside it hit empty cells.
fn fixture(layout: Layout, values: &[i64]) -> Sheet {
    let mut s = Sheet::with_layout(layout, 0, 0);
    for (i, &v) in values.iter().enumerate() {
        let (r, c) = (i as u32 / 4, (i % 4) as u32);
        match i % 6 {
            0..=2 => s.set_value(CellAddr::new(r, c), v),
            3 => s.set_value(CellAddr::new(r, c), format!("t{v}")),
            4 => s.set_value(CellAddr::new(r, c), v % 2 == 0),
            _ => s
                .set_formula_str(CellAddr::new(r, c), &format!("=1/{}", v.rem_euclid(3)))
                .unwrap(),
        }
    }
    recalc::recalc_all(&mut s);
    s
}

const LAYOUTS: [Layout; 2] = [Layout::RowMajor, Layout::ColumnMajor];

proptest! {
    /// Dynamic reads are a subset of the static read-set, and the value
    /// produced is admitted by the inferred type set. The generated
    /// formulas are anchored at column AE, outside the generator's
    /// 26-column reference window, so every window resolves at the origin.
    #[test]
    fn recorded_reads_subset_of_static_read_set(
        exprs in prop::collection::vec(arb_expr(), 1..5),
        values in prop::collection::vec(-50i64..50, 24),
    ) {
        for layout in LAYOUTS {
            let sheet = fixture(layout, &values);
            for (i, expr) in exprs.iter().enumerate() {
                let origin = CellAddr::new(i as u32, 30);
                let an = analyze::analyze(expr, origin);
                let rec = RecordingSource::new(&sheet);
                let meter = Meter::new();
                let got = evaluate(expr, &EvalCtx::new(&rec, &meter, origin));
                prop_assert!(
                    an.ty.admits(&got),
                    "{layout:?}: value {got:?} outside inferred type {}",
                    an.ty
                );
                if let Some(c) = &an.const_value {
                    prop_assert_eq!(c, &got, "constant folding must match evaluation");
                }
                let ReadSet::Windows(ws) = &an.reads else {
                    continue; // unbounded: every read is trivially covered
                };
                let resolved: Vec<Range> = ws
                    .iter()
                    .filter_map(|w| {
                        Some(Range::new(w.start.resolve(origin)?, w.end.resolve(origin)?))
                    })
                    .collect();
                for read in rec.reads() {
                    prop_assert!(
                        resolved.iter().any(|r| r.contains(read)),
                        "{layout:?}: read {} outside static windows {resolved:?}",
                        read.to_a1()
                    );
                }
            }
        }
    }

    /// Whole-sheet soundness: with the random trees installed as real
    /// formulas, `check_sheet` proves bytecode verification, fact
    /// agreement, and dep-graph read-set coverage for every template —
    /// in both layouts.
    #[test]
    fn check_sheet_proves_random_sheets(
        exprs in prop::collection::vec(arb_expr(), 1..5),
        values in prop::collection::vec(-50i64..50, 24),
    ) {
        for layout in LAYOUTS {
            let mut sheet = fixture(layout, &values);
            // Column AE is outside the reference window, so the DAG stays
            // acyclic regardless of what the trees reference.
            for (i, expr) in exprs.iter().enumerate() {
                sheet.set_formula(CellAddr::new(i as u32, 30), expr.clone());
            }
            recalc::recalc_all(&mut sheet);
            if let Err(e) = analyze::check_sheet(&sheet) {
                prop_assert!(false, "{layout:?}: {e}");
            }
        }
    }
}
