//! Acceptance test for the parallel level-scheduled recalculation engine:
//! on a 100k-formula wide DAG, the parallel executor must produce cell
//! values and meter `Counts` identical to the sequential path.

use ssbench::engine::prelude::*;

/// A wide, shallow DAG in the shape the paper's open workload (Fig. 2)
/// stresses: `N` independent formulas over column A, a layer of windowed
/// aggregates over them, and a single grand total.
fn wide_dag_sheet(n: u32, opts: RecalcOptions) -> Sheet {
    let mut s = Sheet::new();
    s.set_recalc_options(opts);
    for i in 0..n {
        s.set_value(CellAddr::new(i, 0), (i % 97) as i64);
        s.set_formula_str(CellAddr::new(i, 1), &format!("=A{r}*A{r}+1", r = i + 1)).unwrap();
    }
    // One aggregate per 100-row block of column B.
    let blocks = n / 100;
    for b in 0..blocks {
        let lo = b * 100 + 1;
        let hi = (b + 1) * 100;
        s.set_formula_str(CellAddr::new(b, 2), &format!("=SUM(B{lo}:B{hi})")).unwrap();
    }
    s.set_formula_str(CellAddr::new(0, 3), &format!("=SUM(C1:C{blocks})")).unwrap();
    s
}

#[test]
fn hundred_k_formula_dag_parallel_equals_sequential() {
    const N: u32 = 100_000; // 100k B-formulas + 1k C-aggregates + 1 total

    let mut seq = wide_dag_sheet(N, RecalcOptions::sequential());
    recalc::recalc_all(&mut seq);

    let mut par = wide_dag_sheet(N, RecalcOptions::with_parallelism(4));
    recalc::recalc_all(&mut par);

    // Every computed cell matches.
    for i in 0..N {
        let b = CellAddr::new(i, 1);
        assert_eq!(seq.value(b), par.value(b), "cell {b}");
    }
    for b in 0..N / 100 {
        let c = CellAddr::new(b, 2);
        assert_eq!(seq.value(c), par.value(c), "cell {c}");
    }
    let total = CellAddr::new(0, 3);
    assert_eq!(seq.value(total), par.value(total));
    // Spot-check against the closed form for one block: rows 1..=100 hold
    // A = 0..=96,0,1,2 so B = a^2+1.
    let expect: f64 = (0..100u32).map(|i| ((i % 97) as f64).powi(2) + 1.0).sum();
    assert_eq!(seq.value(CellAddr::new(0, 2)), Value::Number(expect));

    // Meter counts are bit-identical regardless of thread count.
    assert_eq!(seq.meter().snapshot(), par.meter().snapshot());
}

#[test]
fn dirty_edit_on_large_dag_parallel_equals_sequential() {
    const N: u32 = 20_000;
    let mut seq = wide_dag_sheet(N, RecalcOptions::sequential());
    recalc::recalc_all(&mut seq);
    let mut par = wide_dag_sheet(N, RecalcOptions { parallelism: 4, threshold: 1, ..RecalcOptions::default() });
    recalc::recalc_all(&mut par);

    let before = seq.meter().snapshot();
    assert_eq!(before, par.meter().snapshot());

    // Edit every 1000th input so the dirty set spans many blocks.
    let edits: Vec<CellAddr> = (0..N).step_by(1000).map(|i| CellAddr::new(i, 0)).collect();
    for s in [&mut seq, &mut par] {
        for &a in &edits {
            s.set_value(a, 7);
        }
    }
    recalc::recalc_from(&mut seq, &edits);
    recalc::recalc_from(&mut par, &edits);

    for i in 0..N {
        let b = CellAddr::new(i, 1);
        assert_eq!(seq.value(b), par.value(b), "cell {b}");
    }
    assert_eq!(seq.value(CellAddr::new(0, 3)), par.value(CellAddr::new(0, 3)));
    assert_eq!(seq.meter().snapshot(), par.meter().snapshot());
}
