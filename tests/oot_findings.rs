//! Integration tests over the OOT experiments: the six §5 findings
//! (takeaway boxes) must hold in the reproduced figures, and the fourth
//! (Optimized) system's series must show the predicted improvements.

use ssbench::harness::oot;
use ssbench::harness::RunConfig;

fn cfg(scale: f64) -> RunConfig {
    let mut c = RunConfig::quick();
    c.scale = scale;
    c
}

/// §5.1.2 takeaway: find-and-replace is linear even for absent values —
/// no inverted index. The fourth system's absent probe is near-constant.
#[test]
fn no_index_finding() {
    let r = oot::fig9_find_replace(&cfg(0.05));
    for sys in ["Excel", "Calc", "Google Sheets"] {
        let absent = r.series(&format!("{sys} Absent")).unwrap();
        let first = absent.points[0];
        let last = absent.points.last().unwrap();
        let growth = last.ms / first.ms;
        assert!(
            growth > 1.5,
            "{sys}: absent search grows with data (×{growth:.2})"
        );
    }
    let opt = r.series("Optimized Absent").unwrap();
    let growth = opt.points.last().unwrap().ms / opt.points[0].ms;
    assert!(growth < 1.4, "indexed search ~flat (×{growth:.2})");
}

/// §5.2 takeaway: sequential and random access cost the same in every
/// system — no columnar layout.
#[test]
fn no_columnar_layout_finding() {
    let r = oot::fig10_layout(&cfg(0.1));
    for sys in ["Excel", "Calc", "Google Sheets"] {
        let seq = r.series(&format!("{sys} Sequential")).unwrap().last().unwrap();
        let rnd = r.series(&format!("{sys} Random")).unwrap().last().unwrap();
        let ratio = rnd.ms / seq.ms;
        assert!((0.85..1.2).contains(&ratio), "{sys}: ×{ratio:.2}");
    }
}

/// §5.3 takeaway: no shared computation — the repeated form is quadratic
/// while the reusable form is linear, with a large gap at the top size.
#[test]
fn no_shared_computation_finding() {
    let r = oot::fig11_shared(&cfg(0.05));
    // At this reduced scale the per-formula evaluation overhead props up
    // the reusable time (especially for Calc at 20 µs/eval), compressing
    // the gap; at paper scale it exceeds 100×.
    for (sys, margin) in [("Excel", 10.0), ("Calc", 5.0)] {
        let rep = r.series(&format!("{sys} Repeated")).unwrap().last().unwrap();
        let reu = r.series(&format!("{sys} Reusable")).unwrap().last().unwrap();
        assert!(
            rep.ms > reu.ms * margin,
            "{sys}: repeated ({}) ≫ reusable ({})",
            rep.ms,
            reu.ms
        );
    }
}

/// §5.4 takeaway: identical formulae are recomputed — 5 instances ≈ 5×
/// one instance; the memo answers them for ~1×.
#[test]
fn no_redundancy_elimination_finding() {
    let r = oot::fig12_redundant(&cfg(0.05));
    // Fixed per-op overhead (bases, network RTT) compresses the ratio —
    // drastically for Sheets at this reduced scale — but the variable part
    // must still multiply by the instance count.
    for (sys, margin) in [("Excel", 3.0), ("Calc", 3.0), ("Google Sheets", 1.3)] {
        let one = r.series(&format!("{sys} Single formula")).unwrap().last().unwrap();
        let five = r.series(&format!("{sys} Multiple formulae (5)")).unwrap().last().unwrap();
        assert!(five.ms > one.ms * margin, "{sys}: {} vs {}", five.ms, one.ms);
    }
}

/// §5.5 takeaway: recomputation after a single-cell update scales with
/// the data, not the delta; ~100 instances freeze the sheet.
#[test]
fn no_incremental_updates_finding() {
    let r = oot::fig13_incremental(&cfg(0.05));
    let calc = r.series("Calc").unwrap();
    assert!(calc.points.last().unwrap().ms > calc.points[0].ms * 4.0);

    let r14 = oot::fig14_multi_instance(&cfg(0.05));
    let excel = r14.series("Excel").unwrap();
    let first = excel.points.first().unwrap();
    let last = excel.points.last().unwrap();
    assert!(last.x > first.x);
    assert!(
        last.ms / first.ms > f64::from(last.x) / f64::from(first.x) * 0.5,
        "recalc scales with instance count"
    );
}

/// The fourth (Optimized) system beats the simulated trio in every OOT
/// experiment at the top measured size.
#[test]
fn optimized_series_always_win() {
    let scale = 0.05;
    let r9 = oot::fig9_find_replace(&cfg(scale));
    let naive = r9.series("Excel Present").unwrap().last().unwrap();
    let opt = r9.series("Optimized Present").unwrap().last().unwrap();
    assert!(opt.ms < naive.ms);

    let r12 = oot::fig12_redundant(&cfg(scale));
    let naive = r12.series("Excel Multiple formulae (5)").unwrap().last().unwrap();
    let opt = r12.series("Optimized (memoized ×5)").unwrap().last().unwrap();
    assert!(opt.ms < naive.ms);

    let r13 = oot::fig13_incremental(&cfg(scale));
    let naive = r13.series("Excel").unwrap().last().unwrap();
    let opt = r13.series("Optimized").unwrap().last().unwrap();
    assert!(opt.ms < naive.ms);
}

/// Google Sheets quota caps are respected across OOT experiments
/// (§3.3/§5.1.2).
#[test]
fn sheets_quotas_respected() {
    let c = cfg(1.0); // caps only meaningful at full scale
    // Only check the cap logic, with stop-after to keep this fast.
    let mut c = c;
    c.stop_after_violation = Some(0);
    let r = oot::fig9_find_replace(&c);
    let g = r.series("Google Sheets Present").unwrap();
    assert!(g.points.iter().all(|p| p.x <= 30_000), "find-replace cap 30k");
}
