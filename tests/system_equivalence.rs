//! Cross-system semantic equivalence: every registered simulated system
//! (the paper trio plus Optimized) must compute identical *results* for
//! every operation — they differ only in which extra work they perform
//! and what it costs. Also covers determinism and quota behaviour.

use ssbench::engine::prelude::*;
use ssbench::systems::{all_kinds, OpClass, SimSystem, SystemKind};
use ssbench::workload::schema::*;
use ssbench::workload::{build_sheet, Variant};

const ROWS: u32 = 3_000;

#[test]
fn sort_results_identical_across_systems() {
    let mut sheets: Vec<Sheet> = Vec::new();
    for kind in all_kinds() {
        let sys = SimSystem::new(kind);
        let mut sheet = build_sheet(ROWS, Variant::FormulaValue);
        // Shuffle determinism: sort by state (non-unique keys exercise
        // stability), then by key.
        sys.sort(&mut sheet, STATE_COL);
        sys.sort(&mut sheet, KEY_COL);
        sheets.push(sheet);
    }
    for r in 0..ROWS {
        for c in 0..NUM_COLS {
            let addr = CellAddr::new(r, c);
            let v0 = sheets[0].value(addr);
            for other in &sheets[1..] {
                assert_eq!(v0, other.value(addr), "cell {addr}");
            }
        }
    }
}

#[test]
fn filter_and_pivot_results_identical() {
    let crit = Criterion::parse(&Value::text(FILTER_STATE));
    let mut visibles = Vec::new();
    let mut pivots = Vec::new();
    for kind in all_kinds() {
        let sys = SimSystem::new(kind);
        let mut sheet = build_sheet(ROWS, Variant::ValueOnly);
        let (visible, _) = sys.filter(&mut sheet, STATE_COL, &crit);
        visibles.push(visible);
        let (pivot, _) = sys.pivot(&mut sheet, STATE_COL, MEASURE_COL);
        pivots.push(pivot);
    }
    for v in &visibles[1..] {
        assert_eq!(&visibles[0], v);
    }
    for p in &pivots[1..] {
        assert_eq!(pivots[0].groups, p.groups);
    }
    assert_eq!(pivots[0].len(), 50, "one group per state");
}

#[test]
fn aggregate_results_identical_and_match_ground_truth() {
    let mut counts = Vec::new();
    for kind in all_kinds() {
        let sys = SimSystem::new(kind);
        let mut sheet = build_sheet(ROWS, Variant::ValueOnly);
        let (v, _) = sys.countif(&mut sheet, FORMULA_COL_START, ROWS, "1");
        counts.push(v.as_number().unwrap());
    }
    for &c in &counts[1..] {
        assert_eq!(counts[0], c);
    }
    // Ground truth from the generator.
    let expected = (0..ROWS)
        .filter(|&r| {
            ssbench::workload::generate_row(ssbench::workload::DEFAULT_SEED, r).formula_result(0)
                == 1
        })
        .count() as f64;
    assert_eq!(counts[0], expected);
}

#[test]
fn open_results_identical_for_desktop_systems() {
    let doc = ssbench::workload::build_doc(500, Variant::FormulaValue);
    let (excel_sheet, _) = SimSystem::new(SystemKind::Excel).open_doc(&doc);
    let (calc_sheet, _) = SimSystem::new(SystemKind::Calc).open_doc(&doc);
    // The Optimized open builds column indexes along the way — the
    // resulting values must still be bit-identical.
    let (opt_sheet, _) = SimSystem::new(SystemKind::Optimized).open_doc(&doc);
    for r in 0..500 {
        for c in 0..NUM_COLS {
            let addr = CellAddr::new(r, c);
            assert_eq!(excel_sheet.value(addr), calc_sheet.value(addr), "cell {addr}");
            assert_eq!(excel_sheet.value(addr), opt_sheet.value(addr), "cell {addr}");
        }
    }
}

#[test]
fn simulated_times_are_deterministic_per_seed() {
    for kind in all_kinds() {
        let run = |seed: u64| {
            let sys = SimSystem::with_seed(kind, seed);
            let mut sheet = build_sheet(2_000, Variant::ValueOnly);
            vec![
                sys.countif(&mut sheet, FORMULA_COL_START, 2_000, "1").1,
                sys.sort(&mut sheet, KEY_COL),
                sys.vlookup(&mut sheet, 1_500.0, 2_000, 1, true).1,
            ]
        };
        assert_eq!(run(42), run(42), "{kind} deterministic under one seed");
    }
    // Sheets noise: different seeds give different times.
    let g1 = {
        let sys = SimSystem::with_seed(SystemKind::GSheets, 1);
        let mut sheet = build_sheet(2_000, Variant::ValueOnly);
        sys.countif(&mut sheet, FORMULA_COL_START, 2_000, "1").1
    };
    let g2 = {
        let sys = SimSystem::with_seed(SystemKind::GSheets, 2);
        let mut sheet = build_sheet(2_000, Variant::ValueOnly);
        sys.countif(&mut sheet, FORMULA_COL_START, 2_000, "1").1
    };
    assert_ne!(g1, g2, "noise varies across seeds");
    // …but stays within the documented bound.
    let base = 150.0 + 270.0 + 2_000.0 * 0.01 + 0.0011; // rtt + base + reads + eval
    for g in [g1, g2] {
        assert!((g - base).abs() / base < 0.04, "noise ≤ 3%: {g} vs {base}");
    }
}

#[test]
fn quotas_only_constrain_google_sheets() {
    for kind in all_kinds() {
        let sys = SimSystem::new(kind);
        match kind {
            SystemKind::GSheets => {
                assert_eq!(sys.max_rows(OpClass::Aggregate), Some(90_000));
                assert_eq!(sys.max_rows(OpClass::Sort), Some(50_000));
                assert_eq!(sys.max_rows(OpClass::FindReplace), Some(30_000));
                assert_eq!(sys.max_rows(OpClass::Shared), Some(30_000));
            }
            _ => {
                for op in ssbench::systems::ALL_OPS {
                    assert_eq!(sys.max_rows(op), None, "{kind} unlimited for {op}");
                }
            }
        }
    }
}

#[test]
fn recalc_policies_change_work_not_values() {
    // Conditional formatting with and without the recalc trigger yields
    // identical sheets; only the meter differs.
    let crit = Criterion::parse(&Value::Number(1.0));
    let mut excel_sheet = build_sheet(ROWS, Variant::FormulaValue);
    let mut calc_sheet = build_sheet(ROWS, Variant::FormulaValue);
    SimSystem::new(SystemKind::Excel).conditional_format(&mut excel_sheet, FORMULA_COL_START, &crit);
    SimSystem::new(SystemKind::Calc).conditional_format(&mut calc_sheet, FORMULA_COL_START, &crit);
    for r in 0..ROWS {
        for c in 0..NUM_COLS {
            let addr = CellAddr::new(r, c);
            assert_eq!(excel_sheet.value(addr), calc_sheet.value(addr));
            assert_eq!(
                excel_sheet.cell(addr).map(|x| x.style),
                calc_sheet.cell(addr).map(|x| x.style),
                "style at {addr}"
            );
        }
    }
}
