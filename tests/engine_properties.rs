//! Property-based tests over the engine's core invariants (proptest).

use proptest::prelude::*;

use ssbench::engine::formula::{BinOp, Expr, RangeRef, UnaryOp};
use ssbench::engine::prelude::*;

// ---------------------------------------------------------------------
// Expression generation
// ---------------------------------------------------------------------

fn arb_cellref() -> impl Strategy<Value = CellRef> {
    (0u32..200, 0u32..26, any::<bool>(), any::<bool>()).prop_map(|(row, col, ar, ac)| CellRef {
        addr: CellAddr::new(row, col),
        abs_row: ar,
        abs_col: ac,
    })
}

fn arb_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        // Finite, positive numbers: negative literals print as unary minus,
        // which still round-trips but changes the tree shape.
        (0.0f64..1e9).prop_map(Expr::Number),
        "[a-zA-Z0-9 _:;.!?-]{0,12}".prop_map(|s| Expr::Text(s.into())),
        any::<bool>().prop_map(Expr::Bool),
        arb_cellref().prop_map(Expr::Ref),
        (arb_cellref(), arb_cellref()).prop_map(|(a, b)| {
            // Normalize corners so the printed form re-parses to the same
            // range reference.
            let (start, end) = if (a.addr.row, a.addr.col) <= (b.addr.row, b.addr.col) {
                (a, b)
            } else {
                (b, a)
            };
            Expr::RangeRef(RangeRef { start, end })
        }),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    arb_leaf().prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(a, b, op)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b)
            )),
            inner.clone().prop_map(|e| Expr::Unary(UnaryOp::Neg, Box::new(e))),
            inner.clone().prop_map(|e| Expr::Unary(UnaryOp::Percent, Box::new(e))),
            prop::collection::vec(inner, 0..4).prop_map(|args| Expr::Call("SUM".into(), args)),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Pow),
        Just(BinOp::Concat),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

proptest! {
    /// print ∘ parse is the identity on printed forms (canonical
    /// round-trip): parse(print(e)) prints identically.
    #[test]
    fn printer_parser_round_trip(expr in arb_expr()) {
        let printed = print(&expr);
        let reparsed = parse(&printed)
            .unwrap_or_else(|err| panic!("reparse {printed:?}: {err}"));
        prop_assert_eq!(print(&reparsed), printed);
    }

    /// Reference adjustment round-trips: shifting a formula from A to B
    /// and back yields the original expression (when no shift falls off
    /// the sheet).
    #[test]
    fn adjustment_round_trip(
        expr in arb_expr(),
        from_row in 50u32..100, from_col in 10u32..20,
        to_row in 50u32..100, to_col in 10u32..20,
    ) {
        let from = CellAddr::new(from_row, from_col);
        let to = CellAddr::new(to_row, to_col);
        let there = expr.adjusted(from, to);
        // Rows/cols < 200/26 and |delta| < 50/10, so nothing goes
        // negative … unless the shift pushed a reference off-sheet,
        // which materializes as an Error node; skip those cases.
        fn has_ref_error(e: &Expr) -> bool {
            match e {
                Expr::Error(_) => true,
                Expr::Unary(_, x) => has_ref_error(x),
                Expr::Binary(_, a, b) => has_ref_error(a) || has_ref_error(b),
                Expr::Call(_, args) => args.iter().any(has_ref_error),
                _ => false,
            }
        }
        prop_assume!(!has_ref_error(&there));
        let back = there.adjusted(to, from);
        prop_assert_eq!(print(&back), print(&expr));
    }
}

// ---------------------------------------------------------------------
// Sorting
// ---------------------------------------------------------------------

proptest! {
    /// Sort produces a permutation of the rows, ordered by the key, and
    /// keeps row contents together.
    #[test]
    fn sort_is_an_ordered_permutation(keys in prop::collection::vec(-1000i64..1000, 1..60)) {
        let mut sheet = Sheet::new();
        for (i, &k) in keys.iter().enumerate() {
            sheet.set_value(CellAddr::new(i as u32, 0), k);
            sheet.set_value(CellAddr::new(i as u32, 1), format!("tag{i}"));
        }
        sort_rows(&mut sheet, &[SortKey::asc(0)]);
        // Ordered.
        let sorted: Vec<f64> = (0..keys.len() as u32)
            .map(|r| sheet.value(CellAddr::new(r, 0)).as_number().unwrap())
            .collect();
        prop_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        // Permutation: same multiset of keys.
        let mut expect: Vec<f64> = keys.iter().map(|&k| k as f64).collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(&sorted, &expect);
        // Row integrity: each tag still sits next to its original key.
        for r in 0..keys.len() as u32 {
            let tag = sheet.value(CellAddr::new(r, 1)).display();
            let orig: usize = tag.strip_prefix("tag").unwrap().parse().unwrap();
            prop_assert_eq!(sorted[r as usize], keys[orig] as f64);
        }
    }

    /// Sorting twice is idempotent.
    #[test]
    fn sort_idempotent(keys in prop::collection::vec(-100i64..100, 1..40)) {
        let mut sheet = Sheet::new();
        for (i, &k) in keys.iter().enumerate() {
            sheet.set_value(CellAddr::new(i as u32, 0), k);
        }
        sort_rows(&mut sheet, &[SortKey::asc(0)]);
        let once: Vec<String> =
            (0..keys.len() as u32).map(|r| sheet.value(CellAddr::new(r, 0)).display()).collect();
        sort_rows(&mut sheet, &[SortKey::asc(0)]);
        let twice: Vec<String> =
            (0..keys.len() as u32).map(|r| sheet.value(CellAddr::new(r, 0)).display()).collect();
        prop_assert_eq!(once, twice);
    }
}

// ---------------------------------------------------------------------
// Recalculation
// ---------------------------------------------------------------------

proptest! {
    /// Dirty recalculation after random edits equals a full
    /// recalculation from scratch.
    #[test]
    fn dirty_recalc_equals_full_recalc(
        values in prop::collection::vec(-100i64..100, 10..30),
        edits in prop::collection::vec((0usize..10, -100i64..100), 1..10),
    ) {
        let n = values.len() as u32;
        let build = |values: &[i64]| {
            let mut s = Sheet::new();
            for (i, &v) in values.iter().enumerate() {
                s.set_value(CellAddr::new(i as u32, 0), v);
            }
            // A chain: B1 = SUM(A), Bi = B(i-1) + Ai
            s.set_formula_str(CellAddr::new(0, 1), &format!("=SUM(A1:A{n})")).unwrap();
            for i in 1..5u32.min(n) {
                s.set_formula_str(
                    CellAddr::new(i, 1),
                    &format!("=B{}+A{}", i, i + 1),
                ).unwrap();
            }
            recalc::recalc_all(&mut s);
            s
        };
        let mut incremental = build(&values);
        let mut final_values = values.clone();
        for &(idx, v) in &edits {
            let addr = CellAddr::new(idx as u32, 0);
            incremental.set_value(addr, v);
            recalc::recalc_from(&mut incremental, &[addr]);
            final_values[idx] = v;
        }
        let fresh = build(&final_values);
        for i in 0..5u32.min(n) {
            let addr = CellAddr::new(i, 1);
            prop_assert_eq!(incremental.value(addr), fresh.value(addr), "B{}", i + 1);
        }
    }
}

proptest! {
    /// Parallel level-scheduled recalculation is observationally identical
    /// to the sequential path on random formula DAGs: every cell value and
    /// every meter count matches bit-for-bit, both for a full recalc and
    /// for a dirty recalc after an edit.
    #[test]
    fn parallel_recalc_is_deterministic(
        spec in prop::collection::vec((0u32..64, -100i64..100, 0u8..3), 10..50),
        edit in (0u32..64, -100i64..100),
    ) {
        let n = spec.len();
        let build = |opts: RecalcOptions| {
            let mut s = Sheet::new();
            s.set_recalc_options(opts);
            for (i, &(_, v, _)) in spec.iter().enumerate() {
                s.set_value(CellAddr::new(i as u32, 0), v);
            }
            // Column B holds a random DAG: each formula depends only on
            // column A and on strictly earlier rows of column B, so the
            // graph is acyclic by construction but has random fan-in,
            // including range precedents (exercising the range index).
            for (i, &(pick, _, kind)) in spec.iter().enumerate() {
                let row1 = i + 1; // 1-based for formula text
                let src = if i == 0 || kind == 0 {
                    format!("=A{row1}*2")
                } else if kind == 1 {
                    let j = (pick as usize % i) + 1;
                    format!("=A{row1}+B{j}")
                } else {
                    let lo = (pick as usize % i) + 1;
                    format!("=SUM(B{lo}:B{i})+A{row1}")
                };
                s.set_formula_str(CellAddr::new(i as u32, 1), &src).unwrap();
            }
            recalc::recalc_all(&mut s);
            s
        };
        let par_opts = RecalcOptions { parallelism: 4, threshold: 1, ..RecalcOptions::default() };
        let mut seq = build(RecalcOptions::sequential());
        let mut par = build(par_opts);
        for i in 0..n as u32 {
            for c in 0..2u32 {
                let addr = CellAddr::new(i, c);
                prop_assert_eq!(seq.value(addr), par.value(addr), "cell {}", addr);
            }
        }
        prop_assert_eq!(seq.meter().snapshot(), par.meter().snapshot());

        // A dirty recalc from one edited input must agree too.
        let addr = CellAddr::new(edit.0 % n as u32, 0);
        seq.set_value(addr, edit.1);
        par.set_value(addr, edit.1);
        recalc::recalc_from(&mut seq, &[addr]);
        recalc::recalc_from(&mut par, &[addr]);
        for i in 0..n as u32 {
            let b = CellAddr::new(i, 1);
            prop_assert_eq!(seq.value(b), par.value(b), "cell {}", b);
        }
        prop_assert_eq!(seq.meter().snapshot(), par.meter().snapshot());
    }
}

// ---------------------------------------------------------------------
// Indexes vs scans (optimized crate consistency)
// ---------------------------------------------------------------------

proptest! {
    /// Hash-index COUNTIF equals the formula scan for arbitrary data and
    /// stays equal under edits.
    #[test]
    fn index_countif_matches_scan(
        values in prop::collection::vec(0i64..5, 5..60),
        edits in prop::collection::vec((0usize..5, 0i64..5), 0..8),
    ) {
        use ssbench::optimized::OptimizedSheet;
        let mut sheet = Sheet::new();
        for (i, &v) in values.iter().enumerate() {
            sheet.set_value(CellAddr::new(i as u32, 0), v);
        }
        let n = values.len();
        let mut opt = OptimizedSheet::new(sheet);
        let _ = opt.countif_eq(0, &Value::Number(1.0)); // build
        for &(idx, v) in &edits {
            let idx = idx % n;
            opt.set_value(CellAddr::new(idx as u32, 0), v);
        }
        for needle in 0..5i64 {
            let via_index = opt.countif_eq(0, &Value::Number(needle as f64));
            let via_scan = opt
                .sheet()
                .eval_str(&format!("=COUNTIF(A1:A{n},{needle})"))
                .unwrap();
            prop_assert_eq!(Value::Number(via_index as f64), via_scan, "needle {}", needle);
        }
    }

    /// Incremental aggregates equal recomputation from scratch under any
    /// edit sequence.
    #[test]
    fn incremental_aggregate_matches_recompute(
        values in prop::collection::vec(0i64..4, 5..50),
        edits in prop::collection::vec((0usize..5, 0i64..4), 1..12),
    ) {
        use ssbench::optimized::{AggKind, IncrementalAggregate};
        let n = values.len();
        let mut sheet = Sheet::new();
        for (i, &v) in values.iter().enumerate() {
            sheet.set_value(CellAddr::new(i as u32, 0), v);
        }
        let range = Range::column_segment(0, 0, n as u32 - 1);
        let crit = Criterion::parse(&Value::Number(1.0));
        let mut count = IncrementalAggregate::build(&sheet, range, AggKind::CountIf(crit));
        let mut sum = IncrementalAggregate::build(&sheet, range, AggKind::Sum);
        for &(idx, v) in &edits {
            let addr = CellAddr::new((idx % n) as u32, 0);
            let old = sheet.value(addr);
            sheet.set_value(addr, v);
            count.apply_edit(addr, &old, &Value::Number(v as f64));
            sum.apply_edit(addr, &old, &Value::Number(v as f64));
        }
        prop_assert_eq!(
            count.value(),
            sheet.eval_str(&format!("=COUNTIF(A1:A{n},1)")).unwrap()
        );
        prop_assert_eq!(sum.value(), sheet.eval_str(&format!("=SUM(A1:A{n})")).unwrap());
    }

    /// Find-and-replace equals the naive per-cell string pass.
    #[test]
    fn find_replace_matches_naive(
        texts in prop::collection::vec("[a-c ]{0,8}", 3..30),
        needle in "[a-c]{1,2}",
    ) {
        let mut sheet = Sheet::new();
        for (i, t) in texts.iter().enumerate() {
            sheet.set_value(CellAddr::new(i as u32, 0), t.as_str());
        }
        let range = sheet.used_range().unwrap();
        let changed = find_replace(&mut sheet, range, &needle, "Z");
        let mut expect_changed = 0;
        for (i, t) in texts.iter().enumerate() {
            let replaced = t.replace(&needle, "Z");
            if &replaced != t {
                expect_changed += 1;
            }
            prop_assert_eq!(
                sheet.value(CellAddr::new(i as u32, 0)).display(),
                replaced
            );
        }
        prop_assert_eq!(changed, expect_changed);
    }
}

// ---------------------------------------------------------------------
// Maintained column indexes (the fourth system's engine hook)
// ---------------------------------------------------------------------

proptest! {
    /// An auto-indexed sheet stays bit-identical to an unindexed one under
    /// random edit/insert/delete/sort sequences: the maintained column
    /// indexes may change *how* COUNTIF/VLOOKUP/MATCH are answered (probes
    /// instead of scans), never *what* they answer, and they must ride
    /// every structural edit without drifting from the grid.
    #[test]
    fn maintained_indexes_survive_structural_edits(
        values in prop::collection::vec((0i64..6, -20i64..20), 6..30),
        ops in prop::collection::vec((0u8..4, 0u32..30, 0i64..6), 1..10),
    ) {
        use ssbench::engine::ops::structure::{delete_rows, insert_rows};
        let build = |indexed: bool| {
            let mut s = Sheet::new();
            for (i, &(k, v)) in values.iter().enumerate() {
                s.set_value(CellAddr::new(i as u32, 0), k);
                s.set_value(CellAddr::new(i as u32, 1), v);
            }
            s.set_auto_index(indexed);
            recalc::recalc_all(&mut s);
            s
        };
        let mut plain = build(false);
        let mut indexed = build(true);
        for &(tag, pos, k) in &ops {
            for s in [&mut plain, &mut indexed] {
                let n = s.nrows().max(1);
                match tag {
                    0 => {
                        s.set_value(CellAddr::new(pos % n, 0), k);
                    }
                    1 => {
                        insert_rows(s, pos % (n + 1), 1 + pos % 2);
                    }
                    2 => {
                        if n > 1 {
                            delete_rows(s, pos % n, 1);
                        }
                    }
                    _ => {
                        sort_rows(s, &[SortKey::asc(0)]);
                    }
                }
                recalc::recalc_all(s);
            }
            let n = plain.nrows();
            prop_assert_eq!(indexed.nrows(), n);
            prop_assert!(n > 0);
            for needle in 0..6i64 {
                for q in [
                    format!("=COUNTIF(A1:A{n},{needle})"),
                    format!("=VLOOKUP({needle},A1:B{n},2,FALSE)"),
                    format!("=MATCH({needle},A1:A{n},0)"),
                ] {
                    prop_assert_eq!(
                        plain.eval_str(&q).unwrap(),
                        indexed.eval_str(&q).unwrap(),
                        "{}", q
                    );
                }
            }
            for r in 0..n {
                for c in 0..2u32 {
                    let addr = CellAddr::new(r, c);
                    prop_assert_eq!(plain.value(addr), indexed.value(addr), "cell {}", addr);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Grid layout equivalence
// ---------------------------------------------------------------------

proptest! {
    /// Row-major and column-major sheets agree on every operation
    /// outcome.
    #[test]
    fn layouts_agree(values in prop::collection::vec((0i64..100, 0i64..3), 5..40)) {
        let build = |layout: Layout| {
            let mut s = Sheet::with_layout(layout, 0, 0);
            for (i, &(a, b)) in values.iter().enumerate() {
                s.set_value(CellAddr::new(i as u32, 0), a);
                s.set_value(CellAddr::new(i as u32, 1), b);
            }
            s.set_formula_str(
                CellAddr::new(0, 2),
                &format!("=SUMIF(B1:B{n},1,A1:A{n})", n = values.len()),
            ).unwrap();
            recalc::recalc_all(&mut s);
            sort_rows(&mut s, &[SortKey::asc(0)]);
            s
        };
        let row = build(Layout::RowMajor);
        let col = build(Layout::ColumnMajor);
        for r in 0..values.len() as u32 {
            for c in 0..3u32 {
                let addr = CellAddr::new(r, c);
                prop_assert_eq!(row.value(addr), col.value(addr), "cell {}", addr);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Structural edits
// ---------------------------------------------------------------------

proptest! {
    /// Inserting rows and then deleting them at the same position is the
    /// identity on the document (values, formulas, and references).
    #[test]
    fn insert_then_delete_rows_is_identity(
        values in prop::collection::vec(-50i64..50, 4..20),
        at in 0u32..10,
        count in 1u32..4,
    ) {
        use ssbench::engine::io;
        use ssbench::engine::ops::structure::{delete_rows, insert_rows};
        let n = values.len() as u32;
        prop_assume!(at <= n);
        let mut sheet = Sheet::new();
        for (i, &v) in values.iter().enumerate() {
            sheet.set_value(CellAddr::new(i as u32, 0), v);
        }
        sheet.set_formula_str(CellAddr::new(0, 1), &format!("=SUM(A1:A{n})")).unwrap();
        sheet
            .set_formula_str(CellAddr::new(1, 1), &format!("=$A${n}*2"))
            .unwrap();
        recalc::recalc_all(&mut sheet);
        let before = io::save(&sheet);
        insert_rows(&mut sheet, at, count);
        delete_rows(&mut sheet, at, count);
        let after = io::save(&sheet);
        prop_assert_eq!(before, after);
    }

    /// After any row deletion, recalculated totals equal the sum of the
    /// surviving values.
    #[test]
    fn delete_rows_keeps_sum_consistent(
        values in prop::collection::vec(-50i64..50, 5..25),
        at in 0u32..20,
        count in 1u32..5,
    ) {
        use ssbench::engine::ops::structure::delete_rows;
        let n = values.len() as u32;
        prop_assume!(at < n);
        let mut sheet = Sheet::new();
        for (i, &v) in values.iter().enumerate() {
            sheet.set_value(CellAddr::new(i as u32, 0), v);
        }
        sheet.set_formula_str(CellAddr::new(0, 2), &format!("=SUM(A1:A{n})")).unwrap();
        delete_rows(&mut sheet, at, count);
        recalc::recalc_all(&mut sheet);
        let survivors: i64 = values
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let i = *i as u32;
                i < at || i >= at + count
            })
            .map(|(_, &v)| v)
            .sum();
        // The formula survives unless its own row (row 0) was deleted.
        if at > 0 {
            let total = sheet.value(CellAddr::new(0, 2));
            prop_assert_eq!(total, Value::Number(survivors as f64));
        }
    }
}

// ---------------------------------------------------------------------
// Compiled backend (bytecode VM) vs the tree-walking interpreter
// ---------------------------------------------------------------------

/// Leaves for the backend-differential generator: literals of every kind
/// (including explicit error values), cell references, and range
/// references (which exercise implicit intersection when they appear in
/// scalar positions).
fn arb_vm_leaf() -> impl Strategy<Value = Expr> {
    use ssbench::engine::error::CellError;
    prop_oneof![
        (-1.0e6f64..1.0e6).prop_map(Expr::Number),
        "[a-z0-9 ]{0,8}".prop_map(|s| Expr::Text(s.into())),
        any::<bool>().prop_map(Expr::Bool),
        prop_oneof![
            Just(CellError::Div0),
            Just(CellError::Value),
            Just(CellError::Ref),
            Just(CellError::Na),
            Just(CellError::Num),
        ]
        .prop_map(Expr::Error),
        arb_cellref().prop_map(Expr::Ref),
        (arb_cellref(), arb_cellref()).prop_map(|(a, b)| {
            let (start, end) = if (a.addr.row, a.addr.col) <= (b.addr.row, b.addr.col) {
                (a, b)
            } else {
                (b, a)
            };
            Expr::RangeRef(RangeRef { start, end })
        }),
    ]
}

/// Random expressions biased toward the constructs where the two
/// backends could plausibly diverge: short-circuit IF / AND / OR,
/// IFERROR's error-swallowing, aggregate calls over ranges (the
/// vectorized-kernel path), the volatile NOW, and unknown names.
fn arb_vm_expr() -> impl Strategy<Value = Expr> {
    arb_vm_leaf().prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop())
                .prop_map(|(a, b, op)| Expr::Binary(op, Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| Expr::Unary(UnaryOp::Neg, Box::new(e))),
            inner.clone().prop_map(|e| Expr::Unary(UnaryOp::Percent, Box::new(e))),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Expr::Call("IF".into(), vec![c, t, e])),
            (inner.clone(), inner.clone())
                .prop_map(|(c, t)| Expr::Call("IF".into(), vec![c, t])),
            (inner.clone(), inner.clone())
                .prop_map(|(v, f)| Expr::Call("IFERROR".into(), vec![v, f])),
            prop::collection::vec(inner.clone(), 0..4)
                .prop_map(|args| Expr::Call("AND".into(), args)),
            prop::collection::vec(inner.clone(), 0..4)
                .prop_map(|args| Expr::Call("OR".into(), args)),
            prop::collection::vec(inner.clone(), 1..4)
                .prop_map(|args| Expr::Call("SUM".into(), args)),
            prop::collection::vec(inner.clone(), 1..3)
                .prop_map(|args| Expr::Call("COUNT".into(), args)),
            (inner.clone(), inner.clone())
                .prop_map(|(r, c)| Expr::Call("COUNTIF".into(), vec![r, c])),
            Just(Expr::Call("NOW".into(), vec![])),
            inner.prop_map(|e| Expr::Call("NOSUCHFN".into(), vec![e])),
        ]
    })
}

proptest! {
    /// The bytecode VM is observationally identical to the tree-walking
    /// interpreter on random expression trees: same value for every
    /// formula (including error propagation, implicit intersection,
    /// short-circuit IF/AND/OR, and volatile NOW) and the same meter
    /// counts, cell for cell and tick for tick.
    #[test]
    fn compiled_backend_matches_interpreter_on_random_exprs(
        exprs in prop::collection::vec(arb_vm_expr(), 1..6),
        values in prop::collection::vec(-50i64..50, 24),
    ) {
        let build = |backend: EvalBackend| {
            let mut s = Sheet::new();
            s.set_recalc_options(RecalcOptions { backend, ..RecalcOptions::sequential() });
            // A mixed fixture in the top-left corner: numbers, text,
            // booleans, and formula cells (one of which evaluates to an
            // error). References outside it hit empty cells.
            for (i, &v) in values.iter().enumerate() {
                let (r, c) = (i as u32 / 4, (i % 4) as u32);
                match i % 6 {
                    0..=2 => s.set_value(CellAddr::new(r, c), v),
                    3 => s.set_value(CellAddr::new(r, c), format!("t{v}")),
                    4 => s.set_value(CellAddr::new(r, c), v % 2 == 0),
                    _ => s
                        .set_formula_str(CellAddr::new(r, c), &format!("=1/{}", v.rem_euclid(3)))
                        .unwrap(),
                }
            }
            // The generated formulas live in column AE, outside the
            // generator's reference window, so the DAG stays acyclic.
            for (i, e) in exprs.iter().enumerate() {
                s.set_formula(CellAddr::new(i as u32, 30), e.clone());
            }
            recalc::recalc_all(&mut s);
            s
        };
        let interp = build(EvalBackend::Interpreted);
        let vm = build(EvalBackend::Compiled);
        for i in 0..exprs.len() as u32 {
            let addr = CellAddr::new(i, 30);
            prop_assert_eq!(interp.value(addr), vm.value(addr), "formula {}", i);
        }
        prop_assert_eq!(interp.meter().snapshot(), vm.meter().snapshot());
    }
}

// ---------------------------------------------------------------------
// Strided kernels and window-delta aggregation
// ---------------------------------------------------------------------

/// Cell fillings for the aggregation differentials: integers, awkward
/// numbers (fractions, the 2^53 exactness boundary), text, booleans, a
/// sometimes-erroring formula, and gaps.
fn fill_agg_cell(s: &mut Sheet, addr: CellAddr, tag: u8, v: i64) {
    match tag % 9 {
        0..=2 => s.set_value(addr, v),
        3 => s.set_value(addr, v as f64 + 0.5),
        4 => s.set_value(addr, (1i64 << 53) as f64 + v as f64),
        5 => s.set_value(addr, format!("t{v}")),
        6 => s.set_value(addr, v % 2 == 0),
        7 => s.set_formula_str(addr, &format!("=1/{}", v.rem_euclid(2))).unwrap(),
        _ => {} // leave empty
    }
}

/// Numbers must match bit for bit (the backends claim `-0.0` vs `0.0`
/// agreement, which plain `PartialEq` on `Value` would not catch).
fn assert_value_bits(a: &Value, b: &Value, what: &str) -> Result<(), TestCaseError> {
    if let (Value::Number(x), Value::Number(y)) = (a, b) {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "{} number bits", what);
    }
    prop_assert_eq!(a, b, "{}", what);
    Ok(())
}

const AGG_FUNCS: [&str; 5] = ["SUM", "COUNT", "AVERAGE", "MIN", "MAX"];

proptest! {
    /// The strided range kernels are observationally identical to the
    /// interpreter on both grid layouts and both 1-D range orientations
    /// (plus 2-D blocks): same value for every aggregate and the same
    /// meter counts, tick for tick.
    #[test]
    fn strided_kernels_match_interpreter_across_layouts(
        cells in prop::collection::vec((0u8..9, -50i64..50), 36),
        func in 0usize..5,
        a in 0u32..6, b in 0u32..6, c in 0u32..6, d in 0u32..6,
    ) {
        let name = AGG_FUNCS[func];
        let (r1, r2) = (a.min(b), a.max(b));
        let (c1, c2) = (c.min(d), c.max(d));
        let build = |layout: Layout, backend: EvalBackend| {
            let mut s = Sheet::with_layout(layout, 0, 0);
            s.set_recalc_options(RecalcOptions {
                backend,
                delta: false, // isolate the strided scans from the delta cache
                ..RecalcOptions::sequential()
            });
            // A 6x6 mixed block; the aggregates live in column K, outside it.
            for (i, &(tag, v)) in cells.iter().enumerate() {
                fill_agg_cell(&mut s, CellAddr::new(i as u32 / 6, (i % 6) as u32), tag, v);
            }
            let vert = format!(
                "={name}({}:{})",
                CellAddr::new(r1, c1).to_a1(),
                CellAddr::new(r2, c1).to_a1()
            );
            let horiz = format!(
                "={name}({}:{})",
                CellAddr::new(r1, c1).to_a1(),
                CellAddr::new(r1, c2).to_a1()
            );
            let block = format!(
                "={name}({}:{})",
                CellAddr::new(r1, c1).to_a1(),
                CellAddr::new(r2, c2).to_a1()
            );
            for (i, src) in [vert, horiz, block].iter().enumerate() {
                s.set_formula_str(CellAddr::new(i as u32, 10), src).unwrap();
            }
            recalc::recalc_all(&mut s);
            s
        };
        for layout in [Layout::RowMajor, Layout::ColumnMajor] {
            let interp = build(layout, EvalBackend::Interpreted);
            let vm = build(layout, EvalBackend::Compiled);
            for i in 0..3u32 {
                let addr = CellAddr::new(i, 10);
                assert_value_bits(
                    &interp.value(addr),
                    &vm.value(addr),
                    &format!("{layout:?} formula {i}"),
                )?;
            }
            prop_assert_eq!(
                interp.meter().snapshot(),
                vm.meter().snapshot(),
                "{:?} meters",
                layout
            );
        }
    }

    /// Window-delta aggregation (the sliding cache behind fill-down
    /// windows) is observationally identical to full rescans: the
    /// interpreter, the compiled backend with delta off, and the
    /// compiled backend with delta on agree on every value bit for bit
    /// and on every meter count — including windows over text, booleans,
    /// errors, empties, and numbers outside the exact-integer envelope.
    #[test]
    fn window_delta_matches_full_rescan(
        cells in prop::collection::vec((0u8..9, -50i64..50), 20..60),
        func in 0usize..5,
        w in 1u32..8,
    ) {
        let name = AGG_FUNCS[func];
        let n = cells.len() as u32;
        let build = |opts: RecalcOptions| {
            let mut s = Sheet::new();
            s.set_recalc_options(opts);
            for (i, &(tag, v)) in cells.iter().enumerate() {
                fill_agg_cell(&mut s, CellAddr::new(i as u32, 0), tag, v);
            }
            // Column C: a trailing window of length w sliding down column A.
            for r in 0..n {
                let lo = r.saturating_sub(w - 1) + 1;
                s.set_formula_str(
                    CellAddr::new(r, 2),
                    &format!("={name}(A{lo}:A{hi})", hi = r + 1),
                )
                .unwrap();
            }
            recalc::recalc_all(&mut s);
            s
        };
        let base = RecalcOptions::sequential();
        let interp = build(RecalcOptions { backend: EvalBackend::Interpreted, ..base });
        let rescan =
            build(RecalcOptions { backend: EvalBackend::Compiled, delta: false, ..base });
        let delta = build(RecalcOptions { backend: EvalBackend::Compiled, ..base });
        for r in 0..n {
            let addr = CellAddr::new(r, 2);
            let want = interp.value(addr);
            assert_value_bits(&want, &rescan.value(addr), &format!("row {r} rescan"))?;
            assert_value_bits(&want, &delta.value(addr), &format!("row {r} delta"))?;
        }
        prop_assert_eq!(interp.meter().snapshot(), rescan.meter().snapshot(), "rescan meters");
        prop_assert_eq!(interp.meter().snapshot(), delta.meter().snapshot(), "delta meters");
    }
}

// ---------------------------------------------------------------------
// Buffer-pool interleavings (PR 8)
// ---------------------------------------------------------------------

proptest! {
    /// Random interleavings of writes, pins, unpins, and budget changes
    /// never lose or duplicate a chunk: every cell reads back exactly the
    /// last value written, and the pool's internal invariants (pin
    /// counts, residency accounting, page ownership) hold after every
    /// step. Budgets small enough to force eviction mid-sequence are part
    /// of the space, so spill→fault→re-spill cycles are exercised under
    /// pins.
    #[test]
    fn pool_interleavings_never_lose_or_duplicate_chunks(
        ops in prop::collection::vec((0u8..6, any::<u32>(), any::<u32>()), 1..60),
    ) {
        let n: u32 = 4 * 1024; // four full chunks in one column
        let mut g = GridStore::row_major(1, 1);
        let mut model: Vec<f64> = (0..n).map(f64::from).collect();
        for r in 0..n {
            g.set_value(CellAddr::new(r, 0), Value::Number(model[r as usize])).unwrap();
        }
        for &(kind, a, b) in &ops {
            match kind {
                0 => {
                    let row = a % n;
                    let val = f64::from(b);
                    g.set_value(CellAddr::new(row, 0), Value::Number(val)).unwrap();
                    model[row as usize] = val;
                }
                1 => {
                    let (lo, hi) = ((a % n).min(b % n), (a % n).max(b % n));
                    let range = Range::new(CellAddr::new(lo, 0), CellAddr::new(hi, 0));
                    g.pin_range(range, 16 * 1024);
                }
                2 => g.unpin_all(),
                // Budgets of 1–4 chunk pages: always small enough that
                // four resident chunks overflow, forcing the clock hand
                // to pick victims around any pins.
                3 => g.set_budget(Some(9 * 1024 + (a as usize % 4) * 9 * 1024)),
                4 => g.set_budget(None),
                _ => {
                    let row = a % n;
                    prop_assert_eq!(
                        g.value_at(CellAddr::new(row, 0)),
                        Value::Number(model[row as usize])
                    );
                }
            }
            g.validate();
        }
        // Whatever the interleaving did, dropping pins and the budget
        // must reproduce the full model bit for bit.
        g.unpin_all();
        g.set_budget(None);
        for r in 0..n {
            prop_assert_eq!(g.value_at(CellAddr::new(r, 0)), Value::Number(model[r as usize]));
        }
        g.validate();
    }
}
