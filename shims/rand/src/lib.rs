//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a deterministic, dependency-free implementation of exactly the
//! surface it uses: `rngs::SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::random`, and `Rng::random_range` over integer and float ranges.
//!
//! Streams are *not* bit-compatible with upstream `rand`; all workspace
//! consumers only require determinism per seed, which this provides.

use std::ops::{Range, RangeInclusive};

/// Seedable random sources (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value from the "standard" distribution of `T`
    /// (`f64` in `[0,1)`, full-range integers, fair `bool`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types samplable without an explicit range.
pub trait Standard: Sized {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + f64::sample_standard(rng) * (end - start)
    }
}

/// RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic RNG (xorshift64* over a SplitMix64
    /// seeded state). Stands in for `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 finalizer: decorrelates adjacent seeds.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            SmallRng { state: (z ^ (z >> 31)) | 1 }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: usize = rng.random_range(0..10);
            assert!(x < 10);
            let y: u8 = rng.random_range(0..=3u8);
            assert!(y <= 3);
            let z: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&z));
            let f: f64 = rng.random_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let s: f64 = rng.random();
            assert!((0.0..1.0).contains(&s));
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _: u64 = rng.random_range(0..=u64::MAX);
    }
}
