//! Offline stand-in for `serde_json`, built on the shim `serde` crate's
//! [`Json`] tree: `to_string` / `to_string_pretty` render it as JSON
//! text, `from_str` parses JSON text back into it and hands it to
//! `serde::Deserialize`. Output is valid JSON: non-finite floats render
//! as `null`, strings are escaped per RFC 8259.

use serde::{DeError, Deserialize, Json, Serialize};
use std::fmt::Write as _;

/// Error type shared by serialization (infallible in practice) and
/// deserialization.
pub type Error = DeError;
pub type Result<T> = std::result::Result<T, Error>;

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_json(&value.to_json(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_json(&value.to_json(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text and deserializes it into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let json = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(DeError::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_json(&json)
}

// --- rendering ----------------------------------------------------------

fn write_json(json: &Json, indent: Option<usize>, depth: usize, out: &mut String) {
    match json {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => write_number(*n, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_json(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(value, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // Integral values render without a fractional part, matching
        // serde_json's output for integer types.
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` is Rust's shortest round-trip float formatting.
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(DeError::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(DeError::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(DeError::new(format!(
                "invalid keyword at byte {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| DeError::new(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| DeError::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| DeError::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our own
                            // writer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(DeError::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| DeError::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(DeError::new("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(DeError::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(DeError::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let json = Json::Obj(vec![
            ("name".to_string(), Json::Str("fig2".to_string())),
            ("n".to_string(), Json::Num(100000.0)),
            ("ms".to_string(), Json::Num(3.25)),
            (
                "tags".to_string(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
        ]);
        struct Raw(Json);
        impl Serialize for Raw {
            fn to_json(&self) -> Json {
                self.0.clone()
            }
        }
        let compact = to_string(&Raw(json.clone())).unwrap();
        assert_eq!(
            compact,
            r#"{"name":"fig2","n":100000,"ms":3.25,"tags":[true,null]}"#
        );
        let pretty = to_string_pretty(&Raw(json)).unwrap();
        assert!(pretty.contains("\n  \"name\": \"fig2\""));
    }

    #[test]
    fn parses_round_trip() {
        let text = r#" { "a" : [1, -2.5, "x\ny", {"b": false}], "c": null } "#;
        let v: Vec<(String, String)> = from_str(r#"[["k","v"],["k2","v2"]]"#).unwrap();
        assert_eq!(v[1].1, "v2");
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let json = p.parse_value().unwrap();
        assert_eq!(json.get("a").unwrap().as_arr().unwrap()[2].as_str(), Some("x\ny"));
        assert_eq!(json.get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Vec<f64>>("[1, 2").is_err());
        assert!(from_str::<Vec<f64>>("[1] tail").is_err());
        assert!(from_str::<f64>("nul").is_err());
    }

    #[test]
    fn escapes_survive_round_trip() {
        let original = "quote\" slash\\ nl\n tab\t ctl\u{1} unicode\u{1F600}".to_string();
        let text = to_string(&original).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, original);
    }
}
