//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this crate
//! provides a small wall-clock harness with the same API shape the
//! workspace's benches use: `Criterion::default()` with builder knobs,
//! `bench_function`, `benchmark_group` / `bench_with_input` /
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. No statistics beyond a trimmed mean —
//! the per-iteration timings printed are indicative, not rigorous.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier; stops the optimizer from deleting benched work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, self.warm_up_time, self.measurement_time, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into() }
    }

    /// Called by `criterion_main!` after all groups run.
    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.parent.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.parent.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_bench(
            &name,
            self.parent.sample_size,
            self.parent.warm_up_time,
            self.parent.measurement_time,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        run_bench(
            &name,
            self.parent.sample_size,
            self.parent.warm_up_time,
            self.parent.measurement_time,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing loop handle passed to the closure under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Like `iter`, but the routine receives the iteration count and
    /// returns its own measured duration.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        self.elapsed = routine(self.iters);
    }

    /// Times `routine` on fresh inputs from `setup`; setup cost is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batching hint for [`Bencher::iter_batched`]; the shim times each
/// input individually, so the variants only document intent.
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    f: &mut F,
) {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // estimating the per-iteration cost as we go.
    let mut per_iter = Duration::from_nanos(1);
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed > Duration::ZERO {
            per_iter = b.elapsed;
        }
        if warm_start.elapsed() >= warm_up {
            break;
        }
    }

    // Measurement: `sample_size` samples, sized to fill the budget.
    let budget_per_sample = measurement / sample_size as u32;
    let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));

    // Trimmed mean (drop top/bottom 20%) plus min/max for context.
    let trim = samples.len() / 5;
    let kept = &samples[trim..samples.len() - trim];
    let mean = kept.iter().sum::<f64>() / kept.len() as f64;
    println!(
        "{name:<50} time: [{} {} {}]  ({iters} iters x {sample_size} samples)",
        fmt_time(samples[0]),
        fmt_time(mean),
        fmt_time(*samples.last().unwrap()),
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a benchmark group; mirrors criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
