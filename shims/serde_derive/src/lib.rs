//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! With no access to crates.io there is no `syn`/`quote`, so this macro
//! hand-parses the item's `TokenStream` and emits the impl by formatting
//! source text and re-parsing it. It supports exactly the shapes the
//! workspace uses: non-generic named-field structs, tuple structs, and
//! enums with unit / tuple / struct variants. The only field attribute
//! recognized is `#[serde(serialize_with = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

// --- parsed shape ------------------------------------------------------

struct Input {
    name: String,
    data: Data,
}

enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Field {
    name: String,
    serialize_with: Option<String>,
}

struct Variant {
    name: String,
    fields: Fields,
}

// --- token-stream parsing ----------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Skips attributes, returning the `serialize_with` path if one of them
/// is `#[serde(serialize_with = "path")]`.
fn skip_attrs(toks: &mut Tokens) -> Option<String> {
    let mut serialize_with = None;
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.next() {
                    if let Some(path) = serde_attr_path(g.stream(), "serialize_with") {
                        serialize_with = Some(path);
                    }
                }
            }
            _ => return serialize_with,
        }
    }
}

/// For an attribute body `serde ( key = "value" )`, returns the value
/// when `key` matches.
fn serde_attr_path(attr: TokenStream, key: &str) -> Option<String> {
    let mut toks = attr.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match toks.next() {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => return None,
    };
    let mut inner = inner.into_iter();
    match inner.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == key => {}
        Some(other) => panic!(
            "serde shim derive: unsupported #[serde({other})] attribute (only {key} is recognized)"
        ),
        None => return None,
    }
    match inner.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
        _ => return None,
    }
    match inner.next() {
        Some(TokenTree::Literal(l)) => {
            let s = l.to_string();
            Some(s.trim_matches('"').to_string())
        }
        _ => None,
    }
}

fn skip_visibility(toks: &mut Tokens) {
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

fn expect_ident(toks: &mut Tokens, what: &str) -> String {
    match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected {what}, found {other:?}"),
    }
}

fn parse_input(input: TokenStream) -> Input {
    let mut toks = input.into_iter().peekable();
    skip_attrs(&mut toks);
    skip_visibility(&mut toks);
    let kw = expect_ident(&mut toks, "`struct` or `enum`");
    let name = expect_ident(&mut toks, "item name");
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }
    let data = match kw.as_str() {
        "struct" => Data::Struct(match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => panic!("serde shim derive: unexpected struct body {other:?}"),
        }),
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    };
    Input { name, data }
}

/// Parses `attr* vis? name : Type ,` repeated.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while toks.peek().is_some() {
        let serialize_with = skip_attrs(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        skip_visibility(&mut toks);
        let name = expect_ident(&mut toks, "field name");
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&mut toks);
        fields.push(Field { name, serialize_with });
    }
    fields
}

/// Consumes type tokens up to (and including) a top-level `,`.
/// Angle-bracket nesting is the only depth that matters here: parens,
/// brackets, and braces arrive as whole `Group`s.
fn skip_type(toks: &mut Tokens) {
    let mut angle_depth = 0u32;
    for tok in toks.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts top-level comma-separated fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut count = 0;
    while toks.peek().is_some() {
        skip_attrs(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        skip_visibility(&mut toks);
        skip_type(&mut toks);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while toks.peek().is_some() {
        skip_attrs(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut toks, "variant name");
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                toks.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                toks.next();
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// --- code generation ----------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Fields::Named(fields)) => {
            format!("::serde::Json::Obj(vec![{}])", named_fields_to_json(fields, "self."))
        }
        Data::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Data::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("::serde::Json::Arr(vec![{}])", items.join(", "))
        }
        Data::Struct(Fields::Unit) => "::serde::Json::Null".to_string(),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Json::Str(\"{vname}\".to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Json::Obj(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_json(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Json::Obj(vec![(\"{vname}\".to_string(), ::serde::Json::Arr(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Json::Obj(vec![(\"{vname}\".to_string(), ::serde::Json::Obj(vec![{}]))]),",
                                binds.join(", "),
                                named_fields_to_json(fields, "")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_json(&self) -> ::serde::Json {{\n        {body}\n    }}\n}}\n"
    )
    .parse()
    .expect("serde shim derive: generated Serialize impl failed to parse")
}

/// `("name".to_string(), <serialized field>), ...` for a named-field set.
/// `accessor` is `"self."` for structs and `""` for match-bound variants.
fn named_fields_to_json(fields: &[Field], accessor: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fname = &f.name;
            let value = match &f.serialize_with {
                Some(path) => format!(
                    "match {path}(&{accessor}{fname}, ::serde::JsonSerializer) {{ Ok(j) => j, Err(e) => match e {{}} }}"
                ),
                None => format!("::serde::Serialize::to_json(&{accessor}{fname})"),
            };
            format!("(\"{fname}\".to_string(), {value})")
        })
        .collect::<Vec<_>>()
        .join(", ")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Fields::Named(fields)) => format!(
            "if json.as_obj().is_none() {{\n\
                 return Err(::serde::DeError::new(format!(\"expected object for {name}, found {{}}\", json.kind())));\n\
             }}\n\
             Ok({name} {{ {} }})",
            named_fields_from_json(fields, name)
        ),
        Data::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_json(json)?))")
        }
        Data::Struct(Fields::Tuple(n)) => format!(
            "let items = json.as_arr().ok_or_else(|| ::serde::DeError::new(format!(\"expected array for {name}, found {{}}\", json.kind())))?;\n\
             if items.len() != {n} {{\n\
                 return Err(::serde::DeError::new(format!(\"expected {n} elements for {name}, found {{}}\", items.len())));\n\
             }}\n\
             Ok({name}({}))",
            (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json(&items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Data::Struct(Fields::Unit) => format!("Ok({name})"),
        Data::Enum(variants) => enum_from_json(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n    fn from_json(json: &::serde::Json) -> Result<Self, ::serde::DeError> {{\n        {body}\n    }}\n}}\n"
    )
    .parse()
    .expect("serde shim derive: generated Deserialize impl failed to parse")
}

/// `name: <deserialized>, ...` for a struct literal. Missing fields fall
/// back to deserializing `Null`, which yields `None` for `Option` fields
/// and a descriptive error for everything else.
fn named_fields_from_json(fields: &[Field], owner: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fname = &f.name;
            format!(
                "{fname}: ::serde::Deserialize::from_json(json.get(\"{fname}\").unwrap_or(&::serde::Json::Null))\
                 .map_err(|e| ::serde::DeError::new(format!(\"{owner}.{fname}: {{}}\", e.0)))?"
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn enum_from_json(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => None,
                Fields::Tuple(1) => Some(format!(
                    "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_json(__payload)?)),"
                )),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_json(&__items[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => {{\n\
                             let __items = __payload.as_arr().ok_or_else(|| ::serde::DeError::new(format!(\"expected array for {name}::{vname}, found {{}}\", __payload.kind())))?;\n\
                             if __items.len() != {n} {{\n\
                                 return Err(::serde::DeError::new(format!(\"expected {n} elements for {name}::{vname}, found {{}}\", __items.len())));\n\
                             }}\n\
                             Ok({name}::{vname}({}))\n\
                         }}",
                        items.join(", ")
                    ))
                }
                Fields::Named(fields) => Some(format!(
                    "\"{vname}\" => {{\n\
                         let json = __payload;\n\
                         if json.as_obj().is_none() {{\n\
                             return Err(::serde::DeError::new(format!(\"expected object for {name}::{vname}, found {{}}\", json.kind())));\n\
                         }}\n\
                         Ok({name}::{vname} {{ {} }})\n\
                     }}",
                    named_fields_from_json(fields, &format!("{name}::{vname}"))
                )),
            }
        })
        .collect();
    format!(
        "match json {{\n\
             ::serde::Json::Str(__s) => match __s.as_str() {{\n\
                 {}\n\
                 __other => Err(::serde::DeError::new(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
             }},\n\
             ::serde::Json::Obj(__fields) if __fields.len() == 1 => {{\n\
                 let (__tag, __payload) = &__fields[0];\n\
                 match __tag.as_str() {{\n\
                     {}\n\
                     __other => Err(::serde::DeError::new(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                 }}\n\
             }}\n\
             __other => Err(::serde::DeError::new(format!(\"expected {name} variant, found {{}}\", __other.kind()))),\n\
         }}",
        unit_arms.join("\n"),
        data_arms.join("\n")
    )
}
