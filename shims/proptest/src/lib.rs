//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait (`prop_map`, `prop_recursive`, `boxed`),
//! range / tuple / string-pattern / `Just` / `any::<T>()` strategies,
//! `prop::collection::vec`, the `prop_oneof!` union macro, and the
//! `proptest!` test-runner macro with `prop_assume!` / `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its inputs via the assertion message only), and the RNG stream is
//! derived deterministically from the test function's name, so failures
//! reproduce exactly on rerun without a persistence file.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// --- deterministic RNG ---------------------------------------------------

/// The runner's random source (xorshift64* — deterministic per seed).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        // SplitMix64 finalizer decorrelates nearby seeds.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        TestRng { state: (z ^ (z >> 31)) | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// --- Strategy core -------------------------------------------------------

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: `f` receives a strategy for the
    /// "inner" (smaller) values and returns the composite case. Nesting
    /// is bounded by `depth`; the size hints are accepted for API
    /// compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let composite = f(current).boxed();
            current = Union::new(vec![(1, base.clone()), (2, composite)]).boxed();
        }
        current
    }
}

/// Type-erased, cheaply clonable strategy (single-threaded tests; `Rc`).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always-the-same-value strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of strategies — the engine behind `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, arm) in &self.arms {
            if pick < *weight as u64 {
                return arm.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// --- primitive strategies ------------------------------------------------

macro_rules! impl_int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                start.wrapping_add((rng.next_u64() % span.wrapping_add(1).max(1)) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, i8, i16, i32, i64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// `any::<T>()` — the type's canonical full-domain strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// --- string pattern strategies -------------------------------------------

/// `&'static str` acts as a regex-like pattern strategy producing
/// `String`s. Supported syntax (all the workspace's tests use): literal
/// characters, character classes `[a-z0-9_-]` (ranges plus literals; a
/// trailing `-` is literal), and `{lo,hi}` / `{n}` repetition counts.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = if atom.max == atom.min {
                atom.min
            } else {
                atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
            };
            for _ in 0..count {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let candidates = if c == '[' {
            let mut set = Vec::new();
            let mut members: Vec<char> = Vec::new();
            for m in chars.by_ref() {
                if m == ']' {
                    break;
                }
                members.push(m);
            }
            let mut i = 0;
            while i < members.len() {
                // `a-z` is a range unless `-` starts or ends the class.
                if i + 2 < members.len() && members[i + 1] == '-' {
                    let (lo, hi) = (members[i] as u32, members[i + 2] as u32);
                    assert!(lo <= hi, "invalid pattern range in {pattern:?}");
                    for code in lo..=hi {
                        set.push(char::from_u32(code).unwrap());
                    }
                    i += 3;
                } else {
                    set.push(members[i]);
                    i += 1;
                }
            }
            assert!(!set.is_empty(), "empty character class in {pattern:?}");
            set
        } else {
            assert!(
                !matches!(c, '(' | ')' | '|' | '*' | '+' | '?' | '.'),
                "unsupported pattern syntax {c:?} in {pattern:?} (shim supports classes and counted repeats only)"
            );
            vec![c]
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for m in chars.by_ref() {
                if m == '}' {
                    break;
                }
                spec.push(m);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repeat count"),
                    hi.trim().parse().expect("bad repeat count"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repeat range in {pattern:?}");
        atoms.push(PatternAtom { chars: candidates, min, max });
    }
    atoms
}

// --- tuple strategies ----------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

// --- collections ---------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`] (inclusive).
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// `prop::collection::vec(element, size)` — a `Vec` of generated
    /// elements with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// --- test runner ---------------------------------------------------------

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs out; try another case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Number of passing cases each `proptest!` function must accumulate
/// (`PROPTEST_CASES` overrides the default of 64).
fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Drives one `proptest!`-generated test function: runs `body` with a
/// deterministic RNG until enough cases pass, panicking on the first
/// failure with enough context to reproduce (the stream depends only on
/// the test name and case index).
pub fn run_cases<F>(name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = case_count();
    // FNV-1a over the test name picks the seed.
    let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut passed = 0u64;
    let mut rejected = 0u64;
    let mut case_index = 0u64;
    while passed < cases {
        let mut rng = TestRng::from_seed(seed ^ case_index);
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > cases * 64 {
                    panic!(
                        "proptest {name}: too many prop_assume! rejections \
                         ({rejected} rejects for {passed}/{cases} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "proptest {name}: case {case_index} failed: {message}\n\
                     (deterministic: rerunning this test reproduces the failure)"
                );
            }
        }
        case_index += 1;
    }
}

/// Declares property tests. Each function runs its body against many
/// generated inputs; `pat in strategy` binds one input per argument.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    #[allow(unreachable_code)]
                    let __proptest_result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __proptest_result
                });
            }
        )+
    };
}

/// Weighted/unweighted union of strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((($weight) as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Discards the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Fails the current case (with context) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case when the two expressions differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` != `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __left,
            __right,
            format!($($fmt)*)
        );
    }};
}

/// Everything tests typically import, plus the crate itself as `prop`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_strategy_respects_class_and_count() {
        let mut rng = crate::TestRng::from_seed(3);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{1,2}", &mut rng);
            assert!((1..=2).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = Strategy::generate(&"[a-zA-Z0-9 _:;.!?-]{0,12}", &mut rng);
            assert!(t.len() <= 12);
        }
    }

    #[test]
    fn union_and_recursion_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => {
                    1 + children.iter().map(depth).max().unwrap_or(0)
                }
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = crate::TestRng::from_seed(9);
        for _ in 0..100 {
            // depth bound: 3 recursion levels + leaf
            assert!(depth(&Strategy::generate(&strat, &mut rng)) <= 7);
        }
    }

    proptest! {
        #[test]
        fn runner_binds_and_asserts(x in 0u32..100, v in prop::collection::vec(0i64..5, 1..4)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.iter().count(), "vec {:?}", v);
        }
    }
}
