//! Offline stand-in for `serde` (+ `serde_derive`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serialization framework with the same *spelling* as
//! serde — `#[derive(Serialize, Deserialize)]`, `serde::Serializer`,
//! `#[serde(serialize_with = "...")]` — but a much simpler data model:
//! every value serializes into a [`Json`] tree, and `serde_json` (also
//! shimmed) renders/parses that tree as real JSON text.
//!
//! Supported shapes (all this workspace needs):
//! * structs with named fields;
//! * enums with unit, tuple, and struct variants
//!   (externally tagged, as in real serde);
//! * primitives, `String`, `Option`, `Box`, `Vec`, and tuples up to 4.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The universal serialized form: a JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (field order = declaration order).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object fields, when this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, when this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// A one-word description of the value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Json`] tree.
pub trait Serialize {
    /// This value as a JSON tree.
    fn to_json(&self) -> Json;

    /// serde-compatible entry point (used by `serialize_with` functions).
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_json(self.to_json())
    }
}

/// Deserialization from the [`Json`] tree.
pub trait Deserialize: Sized {
    fn from_json(json: &Json) -> Result<Self, DeError>;
}

// Identity impls: a hand-built `Json` tree is itself serializable, and any
// parsed document can be recovered as a raw tree. Lets callers render
// dynamic documents (e.g. trace exports) through `serde_json::to_string`
// without declaring a mirror struct.
impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl Deserialize for Json {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        Ok(json.clone())
    }
}

/// The sink side of [`Serialize::serialize`]. One concrete implementation
/// exists ([`JsonSerializer`]); the trait is kept generic so call sites
/// written against real serde (`fn ser<S: serde::Serializer>(..)`)
/// compile unchanged.
pub trait Serializer: Sized {
    type Ok;
    type Error: fmt::Debug;

    /// Accepts a fully-built JSON tree.
    fn serialize_json(self, json: Json) -> Result<Self::Ok, Self::Error>;

    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_json(Json::Str(v.to_owned()))
    }

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_json(Json::Bool(v))
    }

    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_json(Json::Num(v))
    }

    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_json(Json::Num(v as f64))
    }

    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_json(Json::Num(v as f64))
    }
}

/// The canonical serializer: produces the [`Json`] tree itself.
pub struct JsonSerializer;

/// Error type for [`JsonSerializer`] (it cannot fail).
#[derive(Debug)]
pub enum Never {}

impl Serializer for JsonSerializer {
    type Ok = Json;
    type Error = Never;

    fn serialize_json(self, json: Json) -> Result<Json, Never> {
        Ok(json)
    }
}

// --- primitive impls ---------------------------------------------------

macro_rules! impl_num {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json(json: &Json) -> Result<Self, DeError> {
                match json {
                    Json::Num(n) => Ok(*n as $t),
                    other => Err(DeError::new(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        match json {
            Json::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        match json {
            Json::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl Serialize for std::sync::Arc<str> {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        match json {
            Json::Str(s) => Ok(std::sync::Arc::from(s.as_str())),
            other => Err(DeError::new(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        T::from_json(json).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        match json {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        match json {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(DeError::new(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json(json: &Json) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = json.as_arr().ok_or_else(|| {
                    DeError::new(format!("expected {LEN}-tuple array, found {}", json.kind()))
                })?;
                if items.len() != LEN {
                    return Err(DeError::new(format!(
                        "expected {LEN}-tuple, found array of {}", items.len()
                    )));
                }
                Ok(($($name::from_json(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_json(&42u32.to_json()).unwrap(), 42);
        assert_eq!(f64::from_json(&2.5f64.to_json()).unwrap(), 2.5);
        assert_eq!(bool::from_json(&true.to_json()).unwrap(), true);
        assert_eq!(String::from_json(&"hi".to_string().to_json()).unwrap(), "hi");
        assert!(u32::from_json(&Json::Null).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let j = v.to_json();
        let back: Vec<(u32, String)> = Deserialize::from_json(&j).unwrap();
        assert_eq!(back, v);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_json(&opt.to_json()).unwrap(), None);
        assert_eq!(Option::<u32>::from_json(&Some(3u32).to_json()).unwrap(), Some(3));
    }

    #[test]
    fn serializer_trait_entry_point() {
        // The path a `serialize_with = "..."` function takes.
        fn ser<S: Serializer>(v: &str, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_str(v)
        }
        let json = ser("excel", JsonSerializer).unwrap();
        assert_eq!(json, Json::Str("excel".to_owned()));
    }
}
